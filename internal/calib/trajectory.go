package calib

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// TrajectorySchema identifies the per-PR calibration trajectory file format
// (CALIB_N.json): the per-tuple-overhead trend across PRs, measured — not
// assumed — after each hot-path change, the companion of the BENCH_N.json
// perf baselines.
const TrajectorySchema = "elasticutor-calib-trajectory/v1"

// TrajectoryEntry is one measurement point on the trajectory. The hot-path
// overheads are always present; the cross-process fields (control delay,
// serialization, migration bandwidth) record how the same primitives cost
// when they cross real sockets — populated by distributed-backend
// calibrations (tools/calibrate -backend dist).
type TrajectoryEntry struct {
	Label                 string  `json:"label"` // e.g. "PR6"
	PerTupleOverheadNS    int64   `json:"per_tuple_overhead_ns"`
	PerEventOverheadNS    int64   `json:"per_event_overhead_ns,omitempty"`
	TuplesPerSec          float64 `json:"tuples_per_sec,omitempty"`
	ControlDelayNS        int64   `json:"control_delay_ns,omitempty"`
	SerializeOverheadNS   int64   `json:"serialize_overhead_ns,omitempty"`
	MigrationBandwidthBps float64 `json:"migration_bandwidth_bps,omitempty"`
}

// Trajectory is the CALIB_N.json contents.
type Trajectory struct {
	SchemaName string            `json:"schema"`
	Host       string            `json:"host,omitempty"`
	Entries    []TrajectoryEntry `json:"entries"`
}

// NewTrajectory returns an empty trajectory with the schema stamped.
func NewTrajectory() *Trajectory { return &Trajectory{SchemaName: TrajectorySchema} }

// Append records a table's hot-path numbers as one trajectory point,
// replacing an existing entry with the same label (re-measuring a PR
// overwrites, it does not duplicate).
func (tr *Trajectory) Append(label string, t *Table) {
	e := TrajectoryEntry{
		Label:                 label,
		PerTupleOverheadNS:    t.PerTupleOverheadNS,
		PerEventOverheadNS:    t.PerEventOverheadNS,
		ControlDelayNS:        t.ControlDelayNS,
		SerializeOverheadNS:   t.SerializeOverheadNS,
		MigrationBandwidthBps: t.MigrationBandwidthBps,
	}
	if t.PerTupleOverheadNS > 0 {
		e.TuplesPerSec = float64(time.Second) / float64(t.PerTupleOverheadNS)
	}
	for i := range tr.Entries {
		if tr.Entries[i].Label == label {
			tr.Entries[i] = e
			return
		}
	}
	tr.Entries = append(tr.Entries, e)
}

// LoadTrajectory reads a trajectory file; a missing file yields an empty
// trajectory (the first measurement creates it).
func LoadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewTrajectory(), nil
	}
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	var tr Trajectory
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("calib: %s: %w", path, err)
	}
	if tr.SchemaName != TrajectorySchema {
		return nil, fmt.Errorf("calib: %s: schema %q, want %q", path, tr.SchemaName, TrajectorySchema)
	}
	return &tr, nil
}

// Save writes the trajectory as indented JSON.
func (tr *Trajectory) Save(path string) error {
	data, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
