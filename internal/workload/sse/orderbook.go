// Package sse provides the Shanghai-Stock-Exchange-style application of the
// paper's §5.4 evaluation: a synthetic limit-order stream with highly dynamic
// per-stock arrival rates (the paper uses a proprietary three-month trace we
// do not have), and a real limit order book matching engine implementing the
// market-clearing logic of the transactor operator (Fig 14).
package sse

import (
	"fmt"
)

// Side is the side of an order.
type Side int8

// Order sides.
const (
	Buy Side = iota
	Sell
)

func (s Side) String() string {
	if s == Buy {
		return "buy"
	}
	return "sell"
}

// Order is one limit order. The paper's order tuples are 96 bytes; this
// struct carries the fields named in §5.4 (user, stock, bid/ask price,
// volume).
type Order struct {
	ID     uint64
	User   uint32
	Stock  uint32
	Side   Side
	Price  int64 // price in cents (integer: no float money)
	Volume int64 // shares requested
}

// OrderBytes is the wire size of one order tuple (paper §5.4).
const OrderBytes = 96

// TradeBytes is the wire size of one transaction record (paper §5.4).
const TradeBytes = 160

// Trade is one executed transaction between a buyer and a seller.
type Trade struct {
	Stock   uint32
	Buyer   uint32
	Seller  uint32
	Price   int64
	Volume  int64
	TakerID uint64 // order that triggered the match
	MakerID uint64 // resting order that was hit
}

// priceLevel is a FIFO queue of resting orders at one price.
type priceLevel struct {
	price  int64
	orders []*restingOrder
}

type restingOrder struct {
	id     uint64
	user   uint32
	volume int64
}

// Book is a limit order book for a single stock with price-time priority:
// better prices match first; within a price, earlier orders match first.
//
// The implementation keeps sorted price-level slices (best price at the end,
// so matching pops from the tail and insertion is an ordered insert). Order
// flow in the synthetic workload clusters near the touch, so inserts are
// near-tail and effectively O(depth of walk).
type Book struct {
	Stock uint32
	bids  []*priceLevel // ascending price; best bid = last
	asks  []*priceLevel // descending price; best ask = last
}

// NewBook returns an empty book for the given stock.
func NewBook(stock uint32) *Book { return &Book{Stock: stock} }

// BestBid returns the highest resting buy price, or 0 if none.
func (b *Book) BestBid() int64 {
	if len(b.bids) == 0 {
		return 0
	}
	return b.bids[len(b.bids)-1].price
}

// BestAsk returns the lowest resting sell price, or 0 if none.
func (b *Book) BestAsk() int64 {
	if len(b.asks) == 0 {
		return 0
	}
	return b.asks[len(b.asks)-1].price
}

// Depth returns the number of resting orders on both sides.
func (b *Book) Depth() int {
	n := 0
	for _, l := range b.bids {
		n += len(l.orders)
	}
	for _, l := range b.asks {
		n += len(l.orders)
	}
	return n
}

// RestingVolume returns the total unfilled volume resting in the book.
func (b *Book) RestingVolume() int64 {
	var v int64
	for _, l := range b.bids {
		for _, o := range l.orders {
			v += o.volume
		}
	}
	for _, l := range b.asks {
		for _, o := range l.orders {
			v += o.volume
		}
	}
	return v
}

// Submit executes order o against the book, returning the trades generated
// (possibly none) — the market-clearing mechanism of the transactor operator.
// Any unfilled remainder rests in the book. Trades execute at the resting
// (maker) order's price, the standard continuous-auction rule.
func (b *Book) Submit(o Order) []Trade {
	if o.Volume <= 0 || o.Price <= 0 {
		return nil
	}
	if o.Stock != b.Stock {
		panic(fmt.Sprintf("sse: order for stock %d submitted to book %d", o.Stock, b.Stock))
	}
	var trades []Trade
	remaining := o.Volume
	if o.Side == Buy {
		// Match against asks with price <= o.Price, best (lowest) first.
		for remaining > 0 && len(b.asks) > 0 {
			best := b.asks[len(b.asks)-1]
			if best.price > o.Price {
				break
			}
			remaining = b.matchLevel(best, &trades, o, remaining)
			if len(best.orders) == 0 {
				b.asks = b.asks[:len(b.asks)-1]
			}
		}
		if remaining > 0 {
			insertLevel(&b.bids, o, remaining, true)
		}
	} else {
		for remaining > 0 && len(b.bids) > 0 {
			best := b.bids[len(b.bids)-1]
			if best.price < o.Price {
				break
			}
			remaining = b.matchLevel(best, &trades, o, remaining)
			if len(best.orders) == 0 {
				b.bids = b.bids[:len(b.bids)-1]
			}
		}
		if remaining > 0 {
			insertLevel(&b.asks, o, remaining, false)
		}
	}
	return trades
}

// matchLevel fills as much of the incoming order as possible at one price
// level, consuming resting orders in FIFO order.
func (b *Book) matchLevel(l *priceLevel, trades *[]Trade, taker Order, remaining int64) int64 {
	for remaining > 0 && len(l.orders) > 0 {
		maker := l.orders[0]
		fill := remaining
		if maker.volume < fill {
			fill = maker.volume
		}
		tr := Trade{
			Stock:   b.Stock,
			Price:   l.price,
			Volume:  fill,
			TakerID: taker.ID,
			MakerID: maker.id,
		}
		if taker.Side == Buy {
			tr.Buyer, tr.Seller = taker.User, maker.user
		} else {
			tr.Buyer, tr.Seller = maker.user, taker.User
		}
		*trades = append(*trades, tr)
		maker.volume -= fill
		remaining -= fill
		if maker.volume == 0 {
			l.orders = l.orders[1:]
		}
	}
	return remaining
}

// insertLevel rests the remainder of an order on the given side. For bids the
// slice is ascending (best last); for asks descending (best last).
func insertLevel(levels *[]*priceLevel, o Order, volume int64, ascending bool) {
	ls := *levels
	// Walk from the tail (best price) toward the head to find the level.
	i := len(ls) - 1
	for i >= 0 {
		if ls[i].price == o.Price {
			ls[i].orders = append(ls[i].orders, &restingOrder{id: o.ID, user: o.User, volume: volume})
			return
		}
		worse := ls[i].price < o.Price
		if !ascending {
			worse = ls[i].price > o.Price
		}
		if worse {
			break
		}
		i--
	}
	nl := &priceLevel{price: o.Price, orders: []*restingOrder{{id: o.ID, user: o.User, volume: volume}}}
	ls = append(ls, nil)
	copy(ls[i+2:], ls[i+1:])
	ls[i+1] = nl
	*levels = ls
}

// Crossed reports whether the book is in an invalid crossed state
// (best bid >= best ask while both sides are non-empty). A correct matching
// engine never leaves the book crossed; tests assert this invariant.
func (b *Book) Crossed() bool {
	return len(b.bids) > 0 && len(b.asks) > 0 && b.BestBid() >= b.BestAsk()
}
