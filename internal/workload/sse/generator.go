package sse

import (
	"math"
	"sort"

	"repro/internal/simtime"
	"repro/internal/stream"
)

// GeneratorConfig shapes the synthetic order flow. Defaults emulate the
// qualitative properties the paper reports for the SSE trace (§5.4, Fig 15):
// a Zipf-popular universe of stocks whose hot set drifts over time, with
// occasional bursts concentrating volume on a few names.
type GeneratorConfig struct {
	Stocks      int              // size of the stock universe
	Users       int              // trading-account universe
	Skew        float64          // zipf skew of stock popularity
	BasePrice   int64            // mid price in cents around which orders cluster
	PriceBand   int64            // max offset of an order price from the drifting mid
	MaxVolume   int64            // order volume is uniform in [1, MaxVolume]
	RegimeEvery simtime.Duration // how often the popularity ranking drifts
	RegimeSwap  int              // how many of the top ranks reshuffle per regime change
	BurstEvery  simtime.Duration // how often a burst stock flares up
	BurstBoost  float64          // multiplier on the burst stock's arrival share
	BurstLen    simtime.Duration // how long a burst lasts
}

// DefaultGeneratorConfig returns the tuning used by the experiments.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Stocks:      2000,
		Users:       100000,
		Skew:        0.8,
		BasePrice:   10000, // ¥100.00
		PriceBand:   50,
		MaxVolume:   1000,
		RegimeEvery: 20 * simtime.Second,
		RegimeSwap:  50,
		BurstEvery:  15 * simtime.Second,
		// BurstBoost sets the burst stock's arrival share to
		// boost/(boost+20) ≈ 7%: a strong single-stock hotspot that is still
		// below one core's service rate at the default offered load (per-key
		// ordering caps any single stock at one task, whatever the paradigm).
		BurstBoost: 1.5,
		BurstLen:   5 * simtime.Second,
	}
}

// Generator produces a stream of limit orders keyed by stock ID with
// time-varying popularity. It is deterministic for a given seed.
type Generator struct {
	cfg        GeneratorConfig
	rng        *simtime.Rand
	cdf        []float64 // popularity CDF by rank
	rank       []uint32  // rank -> stock id
	mids       []int64   // per-stock drifting mid price
	nextID     uint64
	lastRegime simtime.Time
	burstStock int // index into rank, -1 when no burst active
	burstUntil simtime.Time
	lastBurst  simtime.Time
}

// NewGenerator builds a generator with the given config and seed.
func NewGenerator(cfg GeneratorConfig, rng *simtime.Rand) *Generator {
	g := &Generator{cfg: cfg, rng: rng, burstStock: -1}
	g.cdf = make([]float64, cfg.Stocks)
	g.rank = make([]uint32, cfg.Stocks)
	g.mids = make([]int64, cfg.Stocks)
	var sum float64
	for r := 0; r < cfg.Stocks; r++ {
		sum += 1 / math.Pow(float64(r+1), cfg.Skew)
		g.cdf[r] = sum
		g.rank[r] = uint32(r)
		g.mids[r] = cfg.BasePrice + int64(rng.Intn(int(cfg.BasePrice/2))) - cfg.BasePrice/4
	}
	for r := range g.cdf {
		g.cdf[r] /= sum
	}
	return g
}

// advance applies regime drift and burst lifecycle up to virtual time now.
func (g *Generator) advance(now simtime.Time) {
	for g.cfg.RegimeEvery > 0 && now.Sub(g.lastRegime) >= g.cfg.RegimeEvery {
		g.lastRegime = g.lastRegime.Add(g.cfg.RegimeEvery)
		// Swap a handful of hot ranks with random ranks: the hot set drifts
		// without the whole distribution being re-rolled.
		n := g.cfg.RegimeSwap
		if n > len(g.rank) {
			n = len(g.rank)
		}
		for i := 0; i < n; i++ {
			j := g.rng.Intn(len(g.rank))
			g.rank[i], g.rank[j] = g.rank[j], g.rank[i]
		}
	}
	if g.burstStock >= 0 && now >= g.burstUntil {
		g.burstStock = -1
	}
	if g.burstStock < 0 && g.cfg.BurstEvery > 0 && now.Sub(g.lastBurst) >= g.cfg.BurstEvery {
		g.lastBurst = now
		// Burst a mid-popularity stock so the hot set genuinely changes.
		g.burstStock = 10 + g.rng.Intn(len(g.rank)/4)
		g.burstUntil = now.Add(g.cfg.BurstLen)
	}
}

// Next generates the next order at virtual time now.
func (g *Generator) Next(now simtime.Time) Order {
	g.advance(now)
	r := g.sampleRank()
	stock := g.rank[r]
	g.nextID++
	mid := g.drift(stock)
	side := Buy
	if g.rng.Float64() < 0.5 {
		side = Sell
	}
	// Prices cluster inside the band around the mid; buys skew slightly below
	// the mid and sells slightly above, so books build depth but still cross
	// frequently (roughly half of orders trade immediately).
	off := int64(g.rng.Intn(int(g.cfg.PriceBand)))
	var price int64
	if side == Buy {
		price = mid + off - g.cfg.PriceBand/4
	} else {
		price = mid - off + g.cfg.PriceBand/4
	}
	if price < 1 {
		price = 1
	}
	return Order{
		ID:     g.nextID,
		User:   uint32(g.rng.Intn(g.cfg.Users)),
		Stock:  stock,
		Side:   side,
		Price:  price,
		Volume: 1 + int64(g.rng.Intn(int(g.cfg.MaxVolume))),
	}
}

func (g *Generator) sampleRank() int {
	if g.burstStock >= 0 && g.rng.Float64() < g.cfg.BurstBoost/(g.cfg.BurstBoost+20) {
		return g.burstStock
	}
	u := g.rng.Float64()
	r := sort.SearchFloat64s(g.cdf, u)
	if r >= len(g.cdf) {
		r = len(g.cdf) - 1
	}
	return r
}

// drift performs a small random walk on the stock's mid price.
func (g *Generator) drift(stock uint32) int64 {
	m := g.mids[stock] + int64(g.rng.Intn(5)) - 2
	if m < g.cfg.PriceBand {
		m = g.cfg.PriceBand
	}
	g.mids[stock] = m
	return m
}

// Key returns the partitioning key for an order: its stock ID (the paper
// partitions the space of stock IDs, §5.4).
func (o Order) Key() stream.Key { return stream.Key(o.Stock) }

// HotShare returns, for diagnostics and Fig 15, the current arrival
// probability of the k most popular stocks (burst excluded).
func (g *Generator) HotShare(k int) float64 {
	if k > len(g.cdf) {
		k = len(g.cdf)
	}
	if k == 0 {
		return 0
	}
	return g.cdf[k-1]
}

// TopStocks returns the stock IDs currently occupying the top-k popularity
// ranks, hottest first.
func (g *Generator) TopStocks(k int) []uint32 {
	if k > len(g.rank) {
		k = len(g.rank)
	}
	out := make([]uint32, k)
	copy(out, g.rank[:k])
	return out
}
