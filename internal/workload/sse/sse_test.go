package sse

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestSimpleMatch(t *testing.T) {
	b := NewBook(1)
	if tr := b.Submit(Order{ID: 1, User: 10, Stock: 1, Side: Sell, Price: 100, Volume: 50}); len(tr) != 0 {
		t.Fatalf("resting order traded: %v", tr)
	}
	trades := b.Submit(Order{ID: 2, User: 20, Stock: 1, Side: Buy, Price: 100, Volume: 30})
	if len(trades) != 1 {
		t.Fatalf("trades = %v", trades)
	}
	tr := trades[0]
	if tr.Price != 100 || tr.Volume != 30 || tr.Buyer != 20 || tr.Seller != 10 {
		t.Fatalf("trade = %+v", tr)
	}
	if b.RestingVolume() != 20 {
		t.Fatalf("resting volume = %d, want 20", b.RestingVolume())
	}
}

func TestNoMatchWhenPricesDoNotCross(t *testing.T) {
	b := NewBook(1)
	b.Submit(Order{ID: 1, Stock: 1, Side: Sell, Price: 105, Volume: 10})
	trades := b.Submit(Order{ID: 2, Stock: 1, Side: Buy, Price: 100, Volume: 10})
	if len(trades) != 0 {
		t.Fatalf("uncrossed prices traded: %v", trades)
	}
	if b.BestBid() != 100 || b.BestAsk() != 105 {
		t.Fatalf("bbo = %d/%d", b.BestBid(), b.BestAsk())
	}
	if b.Crossed() {
		t.Fatal("book reports crossed")
	}
}

func TestPricePriority(t *testing.T) {
	b := NewBook(1)
	b.Submit(Order{ID: 1, User: 1, Stock: 1, Side: Sell, Price: 102, Volume: 10})
	b.Submit(Order{ID: 2, User: 2, Stock: 1, Side: Sell, Price: 101, Volume: 10})
	trades := b.Submit(Order{ID: 3, User: 3, Stock: 1, Side: Buy, Price: 102, Volume: 15})
	if len(trades) != 2 {
		t.Fatalf("trades = %v", trades)
	}
	// Cheaper ask fills first, at its own (maker) price.
	if trades[0].Seller != 2 || trades[0].Price != 101 || trades[0].Volume != 10 {
		t.Fatalf("first trade = %+v", trades[0])
	}
	if trades[1].Seller != 1 || trades[1].Price != 102 || trades[1].Volume != 5 {
		t.Fatalf("second trade = %+v", trades[1])
	}
}

func TestTimePriorityWithinLevel(t *testing.T) {
	b := NewBook(1)
	b.Submit(Order{ID: 1, User: 1, Stock: 1, Side: Buy, Price: 100, Volume: 10})
	b.Submit(Order{ID: 2, User: 2, Stock: 1, Side: Buy, Price: 100, Volume: 10})
	trades := b.Submit(Order{ID: 3, User: 3, Stock: 1, Side: Sell, Price: 99, Volume: 10})
	if len(trades) != 1 || trades[0].Buyer != 1 || trades[0].MakerID != 1 {
		t.Fatalf("FIFO violated: %v", trades)
	}
}

func TestPartialFillRests(t *testing.T) {
	b := NewBook(1)
	b.Submit(Order{ID: 1, Stock: 1, Side: Sell, Price: 100, Volume: 5})
	trades := b.Submit(Order{ID: 2, Stock: 1, Side: Buy, Price: 101, Volume: 20})
	if len(trades) != 1 || trades[0].Volume != 5 {
		t.Fatalf("trades = %v", trades)
	}
	// Remainder rests as a bid at 101.
	if b.BestBid() != 101 || b.RestingVolume() != 15 {
		t.Fatalf("bid=%d resting=%d", b.BestBid(), b.RestingVolume())
	}
}

func TestRejectInvalidOrders(t *testing.T) {
	b := NewBook(1)
	if b.Submit(Order{Stock: 1, Side: Buy, Price: 0, Volume: 10}) != nil || b.Depth() != 0 {
		t.Fatal("zero price accepted")
	}
	if b.Submit(Order{Stock: 1, Side: Buy, Price: 100, Volume: 0}) != nil || b.Depth() != 0 {
		t.Fatal("zero volume accepted")
	}
}

func TestWrongStockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBook(1).Submit(Order{Stock: 2, Side: Buy, Price: 1, Volume: 1})
}

// Property: after any random order stream, (a) the book is never crossed,
// (b) volume is conserved: submitted = traded*2-sides-counted-once + resting.
func TestBookInvariants(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := simtime.NewRand(seed)
		b := NewBook(7)
		var submitted, traded int64
		for i := 0; i < int(n)+20; i++ {
			o := Order{
				ID:     uint64(i + 1),
				User:   uint32(rng.Intn(50)),
				Stock:  7,
				Side:   Side(rng.Intn(2)),
				Price:  int64(95 + rng.Intn(10)),
				Volume: int64(1 + rng.Intn(100)),
			}
			submitted += o.Volume
			for _, tr := range b.Submit(o) {
				if tr.Volume <= 0 || tr.Price <= 0 {
					return false
				}
				traded += tr.Volume
			}
			if b.Crossed() {
				return false
			}
		}
		// Each unit of traded volume consumed one unit from both an incoming
		// and a resting order: submitted = resting + 2*traded.
		return submitted == b.RestingVolume()+2*traded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTradeExecutesAtMakerPrice(t *testing.T) {
	b := NewBook(1)
	b.Submit(Order{ID: 1, Stock: 1, Side: Buy, Price: 103, Volume: 10})
	trades := b.Submit(Order{ID: 2, Stock: 1, Side: Sell, Price: 99, Volume: 10})
	if len(trades) != 1 || trades[0].Price != 103 {
		t.Fatalf("maker price rule violated: %v", trades)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(DefaultGeneratorConfig(), simtime.NewRand(1))
	g2 := NewGenerator(DefaultGeneratorConfig(), simtime.NewRand(1))
	for i := 0; i < 1000; i++ {
		now := simtime.Time(i) * simtime.Time(simtime.Millisecond)
		a, b := g1.Next(now), g2.Next(now)
		if a != b {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorOrdersValid(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	g := NewGenerator(cfg, simtime.NewRand(2))
	for i := 0; i < 20000; i++ {
		o := g.Next(simtime.Time(i) * simtime.Time(simtime.Millisecond))
		if o.Price <= 0 || o.Volume <= 0 || o.Volume > cfg.MaxVolume {
			t.Fatalf("invalid order %+v", o)
		}
		if int(o.Stock) >= cfg.Stocks || int(o.User) >= cfg.Users {
			t.Fatalf("out-of-universe order %+v", o)
		}
		if o.Key() != 0 && uint32(o.Key()) != o.Stock {
			t.Fatalf("key != stock")
		}
	}
}

func TestGeneratorSkewAndDrift(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	g := NewGenerator(cfg, simtime.NewRand(3))
	counts := map[uint32]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		// Keep time inside the first regime so popularity is stationary.
		o := g.Next(simtime.Time(i % 1000))
		counts[o.Stock]++
	}
	top := g.TopStocks(1)[0]
	if float64(counts[top])/n < 0.01 {
		t.Fatalf("hottest stock share too small: %v", float64(counts[top])/n)
	}
	before := g.TopStocks(20)
	// Cross several regime boundaries.
	for i := 0; i < 1000; i++ {
		g.Next(simtime.Time(2 * simtime.Minute).Add(simtime.Duration(i) * simtime.Millisecond))
	}
	after := g.TopStocks(20)
	same := 0
	for i := range before {
		if before[i] == after[i] {
			same++
		}
	}
	if same == len(before) {
		t.Fatal("popularity ranking did not drift across regimes")
	}
}

func TestGeneratorBurstActivates(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.BurstEvery = simtime.Second
	cfg.BurstLen = 10 * simtime.Second
	g := NewGenerator(cfg, simtime.NewRand(4))
	// Move past the burst trigger, then check concentration on some stock.
	counts := map[uint32]int{}
	for i := 0; i < 20000; i++ {
		o := g.Next(simtime.Time(2 * simtime.Second))
		counts[o.Stock]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	want := cfg.BurstBoost / (cfg.BurstBoost + 20) * 0.8 // burst share, with slack
	if float64(max)/20000 < want {
		t.Fatalf("burst did not concentrate volume: max share %v, want >= %v",
			float64(max)/20000, want)
	}
}

func TestMatchingThroughGeneratedFlow(t *testing.T) {
	// Integration: feed generated orders for one stock through a book and
	// check a healthy share of them trade.
	cfg := DefaultGeneratorConfig()
	cfg.Stocks = 1
	g := NewGenerator(cfg, simtime.NewRand(5))
	b := NewBook(0)
	trades := 0
	const n = 5000
	for i := 0; i < n; i++ {
		o := g.Next(simtime.Time(i) * simtime.Time(simtime.Millisecond))
		trades += len(b.Submit(o))
		if b.Crossed() {
			t.Fatal("book crossed")
		}
	}
	if trades < n/10 {
		t.Fatalf("only %d trades from %d orders; generator/book mismatch", trades, n)
	}
}
