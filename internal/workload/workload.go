// Package workload generates the synthetic inputs of the paper's
// micro-benchmarks (§5.1–5.3): a key space with Zipf-distributed frequencies,
// periodic random permutations of the key→frequency mapping ("shuffles", ω
// per minute), and arrival-rate processes.
package workload

import (
	"math"
	"sort"

	"repro/internal/simtime"
	"repro/internal/stream"
)

// Zipf samples keys 0..n-1 with P(rank r) ∝ 1/(r+1)^s, the distribution the
// paper uses with n = 10,000 and skew s = 0.5. Sampling is by binary search
// over the CDF (O(log n)); the mapping from rank to key identity is a
// permutation that Shuffle re-randomizes to emulate workload dynamics.
type Zipf struct {
	cdf       []float64 // cumulative probability by rank
	guide     []int32   // CDF inversion guide: bucket → first candidate rank
	rankToKey []stream.Key
	rng       *simtime.Rand
	shuffles  int
}

// guidePerRank sets the guide-table resolution (buckets per rank). Finer
// buckets shrink the per-sample scan window at the cost of table memory
// (4 bytes per bucket).
const guidePerRank = 4

// buildGuide precomputes, for each of g uniform buckets of [0,1), the first
// rank whose CDF reaches the bucket's left edge. Sample then only scans the
// few ranks spanning its draw's bucket instead of binary-searching the whole
// CDF. The guide is a pure accelerator: it never changes which rank a given
// uniform draw maps to, so sampling sequences (and the simulator's pinned
// goldens) are byte-identical with or without it.
func (z *Zipf) buildGuide() {
	g := len(z.cdf) * guidePerRank
	if cap(z.guide) >= g+1 {
		z.guide = z.guide[:g+1]
	} else {
		z.guide = make([]int32, g+1)
	}
	r := 0
	for i := 0; i <= g; i++ {
		edge := float64(i) / float64(g)
		for r < len(z.cdf) && z.cdf[r] < edge {
			r++
		}
		if r == len(z.cdf) {
			z.guide[i] = int32(len(z.cdf) - 1)
			continue
		}
		z.guide[i] = int32(r)
	}
}

// NewZipf builds a sampler over n keys with skew s, seeded deterministically.
func NewZipf(n int, s float64, rng *simtime.Rand) *Zipf {
	if n <= 0 {
		panic("workload: Zipf needs n > 0")
	}
	z := &Zipf{cdf: make([]float64, n), rankToKey: make([]stream.Key, n), rng: rng}
	var sum float64
	for r := 0; r < n; r++ {
		sum += 1 / math.Pow(float64(r+1), s)
		z.cdf[r] = sum
	}
	for r := 0; r < n; r++ {
		z.cdf[r] /= sum
		z.rankToKey[r] = stream.Key(r)
	}
	z.buildGuide()
	return z
}

// N returns the key-space size.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one key. The guide table narrows the CDF inversion to a few
// candidate ranks; the result is identical to a full binary search for every
// draw (see buildGuide), just without paying O(log n) cache-missing probes on
// the source hot path.
func (z *Zipf) Sample() stream.Key {
	u := z.rng.Float64()
	g := len(z.guide) - 1
	b := int(u * float64(g))
	// Clamp the bucket and widen one bucket each side: float rounding in
	// u*g can place the draw just outside its nominal bucket.
	lo, hi := b-1, b+2
	if lo < 0 {
		lo = 0
	}
	if hi > g {
		hi = g
	}
	r := int(z.guide[lo])
	last := int(z.guide[hi])
	for r < last && z.cdf[r] < u {
		r++
	}
	if z.cdf[r] < u {
		// Outside the widened window — impossible by construction, but a
		// full search keeps the result exact no matter what floats do.
		r = sort.SearchFloat64s(z.cdf, u)
		if r >= len(z.cdf) {
			r = len(z.cdf) - 1
		}
	}
	return z.rankToKey[r]
}

// Prob returns the probability mass currently assigned to key k (for tests
// and analytical expectations). O(n); not used on the hot path.
func (z *Zipf) Prob(k stream.Key) float64 {
	for r, key := range z.rankToKey {
		if key == k {
			if r == 0 {
				return z.cdf[0]
			}
			return z.cdf[r] - z.cdf[r-1]
		}
	}
	return 0
}

// Shuffle applies a fresh random permutation to the rank→key mapping: the
// same frequency *profile* is redistributed over different key identities,
// exactly the paper's "shuffle the frequencies of tuple keys by applying a
// random permutation ω times per minute" (§5.1).
func (z *Zipf) Shuffle() {
	p := z.rng.Perm(len(z.rankToKey))
	next := make([]stream.Key, len(p))
	for r, idx := range p {
		next[r] = stream.Key(idx)
	}
	z.rankToKey = next
	z.shuffles++
}

// Shuffles returns how many shuffles have been applied.
func (z *Zipf) Shuffles() int { return z.shuffles }

// SetSkew rebuilds the frequency profile with a new skew factor, keeping the
// current rank→key mapping. Scenario skew-drift phases call this repeatedly
// to morph a near-uniform workload into a sharply skewed one (or back).
func (z *Zipf) SetSkew(s float64) {
	var sum float64
	for r := range z.cdf {
		sum += 1 / math.Pow(float64(r+1), s)
		z.cdf[r] = sum
	}
	for r := range z.cdf {
		z.cdf[r] /= sum
	}
	z.buildGuide()
}

// Rotate shifts the rank→key mapping by n positions: every frequency rank
// moves to the key n identities over, so the hot set migrates to a disjoint
// key range deterministically — the scenario engine's "hotspot migration"
// dynamic (a directed cousin of Shuffle's random permutation).
func (z *Zipf) Rotate(n int) {
	size := len(z.rankToKey)
	if size == 0 {
		return
	}
	n %= size
	if n < 0 {
		n += size
	}
	if n == 0 {
		return
	}
	next := make([]stream.Key, size)
	for r, k := range z.rankToKey {
		next[r] = stream.Key((int(k) + n) % size)
	}
	z.rankToKey = next
}

// PartialShuffle permutes the key identities of a random frac of the ranks
// (key churn: a slice of the population is replaced while the rest keeps its
// traffic). frac is clamped to [0, 1]; fewer than two affected ranks is a
// no-op.
func (z *Zipf) PartialShuffle(frac float64) {
	if frac > 1 {
		frac = 1
	}
	m := int(frac * float64(len(z.rankToKey)))
	if m < 2 {
		return
	}
	ranks := z.rng.Perm(len(z.rankToKey))[:m]
	vals := make([]stream.Key, m)
	for i, r := range ranks {
		vals[i] = z.rankToKey[r]
	}
	for i, j := range z.rng.Perm(m) {
		z.rankToKey[ranks[i]] = vals[j]
	}
}

// HottestKeys returns the top-k keys by current probability mass, hottest
// first. Used by tests and by the hotspot example.
func (z *Zipf) HottestKeys(k int) []stream.Key {
	if k > len(z.rankToKey) {
		k = len(z.rankToKey)
	}
	out := make([]stream.Key, k)
	copy(out, z.rankToKey[:k])
	return out
}

// Spec bundles the micro-benchmark workload parameters of §5.1 with their
// paper defaults.
type Spec struct {
	Keys           int              // distinct keys (default 10,000)
	Skew           float64          // zipf skew factor (default 0.5)
	TupleBytes     int              // payload size of one tuple (default 128)
	CPUCost        simtime.Duration // per-tuple processing cost (default 1 ms)
	ShardStateKB   int              // shard state size in KB (default 32)
	ShufflesPerMin float64          // ω, key-frequency shuffles per minute
}

// DefaultSpec returns the paper's default micro-benchmark workload.
func DefaultSpec() Spec {
	return Spec{
		Keys:         10000,
		Skew:         0.5,
		TupleBytes:   128,
		CPUCost:      simtime.Millisecond,
		ShardStateKB: 32,
	}
}

// DataIntensive returns the §5.3 data-intensive variant (8 KB tuples).
func (s Spec) DataIntensive() Spec { s.TupleBytes = 8192; return s }

// HighlyDynamic returns the §5.3 highly dynamic variant (ω = 16).
func (s Spec) HighlyDynamic() Spec { s.ShufflesPerMin = 16; return s }

// ShuffleInterval returns the virtual time between shuffles, or 0 if the
// workload is static (ω = 0).
func (s Spec) ShuffleInterval() simtime.Duration {
	if s.ShufflesPerMin <= 0 {
		return 0
	}
	return simtime.FromSeconds(simtime.Minute.Seconds() / s.ShufflesPerMin)
}

// RateFunc gives the offered load (tuples/second) at a virtual time. The
// throughput experiments use an effectively unbounded rate and let
// backpressure find the sustainable maximum; latency-focused runs use finite
// rates.
type RateFunc func(t simtime.Time) float64

// ConstantRate returns a fixed-rate function.
func ConstantRate(perSec float64) RateFunc {
	return func(simtime.Time) float64 { return perSec }
}

// StepRate returns baseline until at, then level (a workload surge).
func StepRate(baseline, level float64, at simtime.Time) RateFunc {
	return func(t simtime.Time) float64 {
		if t < at {
			return baseline
		}
		return level
	}
}

// SineRate oscillates around mean with the given amplitude and period,
// clamped at zero. Used to emulate diurnal-style fluctuation.
func SineRate(mean, amplitude float64, period simtime.Duration) RateFunc {
	return func(t simtime.Time) float64 {
		v := mean + amplitude*math.Sin(2*math.Pi*t.Seconds()/period.Seconds())
		if v < 0 {
			return 0
		}
		return v
	}
}
