package workload

import (
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/stream"
)

func TestZipfRankProbabilities(t *testing.T) {
	z := NewZipf(100, 1.0, simtime.NewRand(1))
	// With s=1 over 100 keys, P(rank0)/P(rank1) = 2.
	p0 := z.Prob(z.HottestKeys(1)[0])
	p1 := z.Prob(z.HottestKeys(2)[1])
	if math.Abs(p0/p1-2) > 0.01 {
		t.Fatalf("p0/p1 = %v, want 2", p0/p1)
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z := NewZipf(50, 0.5, simtime.NewRand(2))
	const draws = 200000
	counts := map[stream.Key]int{}
	for i := 0; i < draws; i++ {
		counts[z.Sample()]++
	}
	for _, k := range z.HottestKeys(5) {
		want := z.Prob(k) * draws
		got := float64(counts[k])
		if math.Abs(got-want)/want > 0.1 {
			t.Fatalf("key %d: got %v draws, want ~%v", k, got, want)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(20, 0.7, simtime.NewRand(3))
	sum := 0.0
	for k := 0; k < 20; k++ {
		sum += z.Prob(stream.Key(k))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestShuffleMovesMassButPreservesProfile(t *testing.T) {
	z := NewZipf(1000, 0.5, simtime.NewRand(4))
	before := z.HottestKeys(10)
	beforeP0 := z.Prob(before[0])
	z.Shuffle()
	after := z.HottestKeys(10)
	if z.Shuffles() != 1 {
		t.Fatalf("Shuffles = %d", z.Shuffles())
	}
	// The hottest key almost surely changed identity…
	sameAll := true
	for i := range before {
		if before[i] != after[i] {
			sameAll = false
			break
		}
	}
	if sameAll {
		t.Fatal("shuffle left the hot set identical (p ~ 0)")
	}
	// …but the probability profile is untouched.
	if p := z.Prob(after[0]); math.Abs(p-beforeP0) > 1e-12 {
		t.Fatalf("hot-rank probability changed: %v vs %v", p, beforeP0)
	}
}

func TestShuffleKeepsKeySpace(t *testing.T) {
	z := NewZipf(64, 0.5, simtime.NewRand(5))
	z.Shuffle()
	seen := map[stream.Key]bool{}
	for _, k := range z.HottestKeys(64) {
		if k >= 64 || seen[k] {
			t.Fatalf("rank map is not a permutation: key %d", k)
		}
		seen[k] = true
	}
}

func TestSampleInRange(t *testing.T) {
	z := NewZipf(10, 0.5, simtime.NewRand(6))
	for i := 0; i < 10000; i++ {
		if k := z.Sample(); k >= 10 {
			t.Fatalf("sample out of range: %d", k)
		}
	}
}

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec()
	if s.Keys != 10000 || s.Skew != 0.5 || s.TupleBytes != 128 ||
		s.CPUCost != simtime.Millisecond || s.ShardStateKB != 32 {
		t.Fatalf("defaults = %+v", s)
	}
	if s.ShuffleInterval() != 0 {
		t.Fatal("static default should have no shuffle interval")
	}
	di := s.DataIntensive()
	if di.TupleBytes != 8192 {
		t.Fatalf("data-intensive bytes = %d", di.TupleBytes)
	}
	hd := s.HighlyDynamic()
	if hd.ShufflesPerMin != 16 {
		t.Fatalf("highly dynamic ω = %v", hd.ShufflesPerMin)
	}
	if hd.ShuffleInterval() != simtime.Duration(3750*simtime.Millisecond) {
		t.Fatalf("shuffle interval = %v", hd.ShuffleInterval())
	}
}

func TestRateFuncs(t *testing.T) {
	c := ConstantRate(100)
	if c(0) != 100 || c(simtime.Time(simtime.Minute)) != 100 {
		t.Fatal("ConstantRate wrong")
	}
	st := StepRate(10, 50, simtime.Time(simtime.Second))
	if st(0) != 10 || st(simtime.Time(2*simtime.Second)) != 50 {
		t.Fatal("StepRate wrong")
	}
	sr := SineRate(100, 50, simtime.Minute)
	if v := sr(simtime.Time(15 * simtime.Second)); math.Abs(v-150) > 1e-6 {
		t.Fatalf("SineRate peak = %v", v)
	}
	neg := SineRate(10, 100, simtime.Minute)
	if v := neg(simtime.Time(45 * simtime.Second)); v != 0 {
		t.Fatalf("SineRate should clamp at 0, got %v", v)
	}
}
