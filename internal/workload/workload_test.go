package workload

import (
	"math"
	"testing"

	"repro/internal/simtime"
	"repro/internal/stream"
)

func TestZipfRankProbabilities(t *testing.T) {
	z := NewZipf(100, 1.0, simtime.NewRand(1))
	// With s=1 over 100 keys, P(rank0)/P(rank1) = 2.
	p0 := z.Prob(z.HottestKeys(1)[0])
	p1 := z.Prob(z.HottestKeys(2)[1])
	if math.Abs(p0/p1-2) > 0.01 {
		t.Fatalf("p0/p1 = %v, want 2", p0/p1)
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z := NewZipf(50, 0.5, simtime.NewRand(2))
	const draws = 200000
	counts := map[stream.Key]int{}
	for i := 0; i < draws; i++ {
		counts[z.Sample()]++
	}
	for _, k := range z.HottestKeys(5) {
		want := z.Prob(k) * draws
		got := float64(counts[k])
		if math.Abs(got-want)/want > 0.1 {
			t.Fatalf("key %d: got %v draws, want ~%v", k, got, want)
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(20, 0.7, simtime.NewRand(3))
	sum := 0.0
	for k := 0; k < 20; k++ {
		sum += z.Prob(stream.Key(k))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestShuffleMovesMassButPreservesProfile(t *testing.T) {
	z := NewZipf(1000, 0.5, simtime.NewRand(4))
	before := z.HottestKeys(10)
	beforeP0 := z.Prob(before[0])
	z.Shuffle()
	after := z.HottestKeys(10)
	if z.Shuffles() != 1 {
		t.Fatalf("Shuffles = %d", z.Shuffles())
	}
	// The hottest key almost surely changed identity…
	sameAll := true
	for i := range before {
		if before[i] != after[i] {
			sameAll = false
			break
		}
	}
	if sameAll {
		t.Fatal("shuffle left the hot set identical (p ~ 0)")
	}
	// …but the probability profile is untouched.
	if p := z.Prob(after[0]); math.Abs(p-beforeP0) > 1e-12 {
		t.Fatalf("hot-rank probability changed: %v vs %v", p, beforeP0)
	}
}

func TestShuffleKeepsKeySpace(t *testing.T) {
	z := NewZipf(64, 0.5, simtime.NewRand(5))
	z.Shuffle()
	seen := map[stream.Key]bool{}
	for _, k := range z.HottestKeys(64) {
		if k >= 64 || seen[k] {
			t.Fatalf("rank map is not a permutation: key %d", k)
		}
		seen[k] = true
	}
}

func TestSetSkewMorphsProfileInPlace(t *testing.T) {
	z := NewZipf(1000, 0.2, simtime.NewRand(9))
	hot := z.HottestKeys(1)[0]
	flat := z.Prob(hot)
	z.SetSkew(1.2)
	sharp := z.Prob(hot)
	if sharp <= flat*2 {
		t.Fatalf("skew 0.2→1.2 did not concentrate mass: %v -> %v", flat, sharp)
	}
	// The rank→key mapping is untouched.
	if got := z.HottestKeys(1)[0]; got != hot {
		t.Fatalf("SetSkew moved the hot identity: %d -> %d", hot, got)
	}
	// Distribution still sums to 1.
	sum := 0.0
	for k := 0; k < 1000; k++ {
		sum += z.Prob(stream.Key(k))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v after SetSkew", sum)
	}
}

func TestRotateShiftsHotSetDeterministically(t *testing.T) {
	z := NewZipf(100, 0.8, simtime.NewRand(10))
	before := z.HottestKeys(5)
	z.Rotate(17)
	after := z.HottestKeys(5)
	for i := range before {
		want := stream.Key((int(before[i]) + 17) % 100)
		if after[i] != want {
			t.Fatalf("rank %d: %d -> %d, want %d", i, before[i], after[i], want)
		}
	}
	// Still a permutation.
	seen := map[stream.Key]bool{}
	for _, k := range z.HottestKeys(100) {
		if k >= 100 || seen[k] {
			t.Fatalf("rotate broke the permutation at key %d", k)
		}
		seen[k] = true
	}
	// Rotating by the key-space size is a no-op.
	snap := z.HottestKeys(100)
	z.Rotate(100)
	for i, k := range z.HottestKeys(100) {
		if snap[i] != k {
			t.Fatal("full rotation changed the mapping")
		}
	}
}

func TestPartialShuffleChurnsOnlyAFraction(t *testing.T) {
	z := NewZipf(1000, 0.5, simtime.NewRand(11))
	before := z.HottestKeys(1000)
	z.PartialShuffle(0.2)
	after := z.HottestKeys(1000)
	moved := 0
	seen := map[stream.Key]bool{}
	for i := range after {
		if before[i] != after[i] {
			moved++
		}
		if after[i] >= 1000 || seen[after[i]] {
			t.Fatalf("partial shuffle broke the permutation at rank %d", i)
		}
		seen[after[i]] = true
	}
	if moved == 0 {
		t.Fatal("nothing churned")
	}
	if moved > 250 {
		t.Fatalf("churned %d ranks, want ≲ 200 (fraction 0.2)", moved)
	}
	// Degenerate fractions are no-ops.
	snap := z.HottestKeys(1000)
	z.PartialShuffle(0)
	z.PartialShuffle(0.0001)
	for i, k := range z.HottestKeys(1000) {
		if snap[i] != k {
			t.Fatal("no-op fraction mutated the mapping")
		}
	}
}

func TestSampleInRange(t *testing.T) {
	z := NewZipf(10, 0.5, simtime.NewRand(6))
	for i := 0; i < 10000; i++ {
		if k := z.Sample(); k >= 10 {
			t.Fatalf("sample out of range: %d", k)
		}
	}
}

func TestDefaultSpec(t *testing.T) {
	s := DefaultSpec()
	if s.Keys != 10000 || s.Skew != 0.5 || s.TupleBytes != 128 ||
		s.CPUCost != simtime.Millisecond || s.ShardStateKB != 32 {
		t.Fatalf("defaults = %+v", s)
	}
	if s.ShuffleInterval() != 0 {
		t.Fatal("static default should have no shuffle interval")
	}
	di := s.DataIntensive()
	if di.TupleBytes != 8192 {
		t.Fatalf("data-intensive bytes = %d", di.TupleBytes)
	}
	hd := s.HighlyDynamic()
	if hd.ShufflesPerMin != 16 {
		t.Fatalf("highly dynamic ω = %v", hd.ShufflesPerMin)
	}
	if hd.ShuffleInterval() != simtime.Duration(3750*simtime.Millisecond) {
		t.Fatalf("shuffle interval = %v", hd.ShuffleInterval())
	}
}

func TestRateFuncs(t *testing.T) {
	c := ConstantRate(100)
	if c(0) != 100 || c(simtime.Time(simtime.Minute)) != 100 {
		t.Fatal("ConstantRate wrong")
	}
	st := StepRate(10, 50, simtime.Time(simtime.Second))
	if st(0) != 10 || st(simtime.Time(2*simtime.Second)) != 50 {
		t.Fatal("StepRate wrong")
	}
	sr := SineRate(100, 50, simtime.Minute)
	if v := sr(simtime.Time(15 * simtime.Second)); math.Abs(v-150) > 1e-6 {
		t.Fatalf("SineRate peak = %v", v)
	}
	neg := SineRate(10, 100, simtime.Minute)
	if v := neg(simtime.Time(45 * simtime.Second)); v != 0 {
		t.Fatalf("SineRate should clamp at 0, got %v", v)
	}
}
