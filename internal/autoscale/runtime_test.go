package autoscale

import (
	"context"
	"testing"

	rtbackend "repro/internal/runtime"
	"repro/internal/scenario"
)

// TestAutoscaleRuntimeReactiveFlashcrowd drives the same reactive/flashcrowd
// closed loop on the real-time backend: the control loop samples on the
// scaled wall clock from timer goroutines while workers process tuples, so
// this is the subsystem's race-detector workout. Wall-clock decisions vary
// run to run; the invariants do not: the ledger stays conserved and every
// autoscaler-initiated drain is graceful (zero lost state).
func TestAutoscaleRuntimeReactiveFlashcrowd(t *testing.T) {
	sp, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	rt, h, err := rtbackend.BuildScenario(sp, "elasticutor", 42,
		rtbackend.ScenarioOptions{Options: rtbackend.Options{Speedup: 40}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ByName("reactive")
	if err != nil {
		t.Fatal(err)
	}
	sess := Attach(h, a, Config{Warmup: sp.Warmup(), MaxNodes: 6})
	h.Start(context.Background())
	r, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r.Autoscale == nil {
		t.Fatal("report has no Autoscale section")
	}
	if r.Autoscale.Controller != "reactive" {
		t.Fatalf("controller = %q", r.Autoscale.Controller)
	}
	if got := sess.Stats(); got.Ticks == 0 {
		t.Fatal("control loop never ticked")
	}
	if led := rt.Ledger(); !led.Conserved() {
		t.Fatalf("ledger not conserved under autoscaling: %v", led)
	}
	// Scale-downs are graceful drains: state migrates, nothing is lost. (A
	// wall-clock run may legitimately decide never to scale; the invariant
	// is conditional on drains having happened, the conservation above is
	// not.)
	if r.NodeDrains > 0 && r.LostStateBytes != 0 {
		t.Fatalf("autoscaler drains lost %d bytes of state", r.LostStateBytes)
	}
	if r.NodeFails != 0 {
		t.Fatalf("autoscaler failed %d nodes; it must only join and drain", r.NodeFails)
	}
	// The cost integral is wall-clock dependent but must cover the run at
	// the initial size or more.
	if r.Autoscale.NodeSeconds < 60 {
		t.Fatalf("node-seconds %.1f below the 4-node floor", r.Autoscale.NodeSeconds)
	}
}
