package autoscale

import (
	"fmt"
	"sort"
	"sync"
)

// registry maps controller names to constructors. Each lookup builds a fresh
// instance: controllers carry per-run state (hysteresis counters, trend
// windows) and must never be shared between runs — the same contract as the
// elasticity-policy registry.
var (
	regMu    sync.RWMutex
	registry = map[string]func() Autoscaler{
		"none":       newNone,
		"reactive":   newReactive,
		"backlog":    newBacklog,
		"predictive": newPredictive,
		"latency":    newLatency,
	}
)

// Register adds an autoscaler constructor under name, making it selectable
// wherever built-ins are (facade Options.Autoscaler, CLI -autoscaler). It
// panics on a duplicate name: silently shadowing a controller would corrupt
// a study's results.
func Register(name string, ctor func() Autoscaler) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || ctor == nil {
		panic("autoscale: Register needs a name and a constructor")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("autoscale: %q already registered", name))
	}
	registry[name] = ctor
}

// ByName returns a fresh instance of the named controller.
func ByName(name string) (Autoscaler, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("autoscale: unknown autoscaler %q (have %v)", name, namesLocked())
	}
	return ctor(), nil
}

// Names lists the registered controller names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
