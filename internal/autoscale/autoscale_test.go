package autoscale

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

func TestRegistry(t *testing.T) {
	want := []string{"backlog", "latency", "none", "predictive", "reactive"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("ByName(%s).Name() = %s", name, a.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown controller")
	}
	// Fresh instance per lookup: controllers carry per-run state.
	a1, _ := ByName("reactive")
	a2, _ := ByName("reactive")
	if a1 == a2 {
		t.Fatal("ByName returned a shared instance")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate Register did not panic")
			}
		}()
		Register("none", newNone)
	}()
}

// metricsAt builds a plausible Metrics for controller unit tests.
func metricsAt(tick int, blockedFrac float64, demandCores float64) Metrics {
	demand := demandCores * 1000
	return Metrics{
		Tick: tick, Warm: true,
		Window:    500 * simtime.Millisecond,
		LiveNodes: 4, TotalCores: 32, UsedCores: 31, OpCores: 27, SourceCores: 4,
		Utilization: 31.0 / 32,
		DemandRate:  demand, OfferedRate: demand * (1 - blockedFrac),
		BlockedRate: demand * blockedFrac, BlockedFrac: blockedFrac,
		CoreRate: 1000, DemandCores: demandCores,
		Backlog:  4000,
		MinNodes: 4, MaxNodes: 8, CoresPerNode: 8,
	}
}

func TestReactiveHysteresisAndCooldown(t *testing.T) {
	c := newReactive().(*reactive)
	// One saturated window is not enough.
	if d := c.Decide(metricsAt(1, 0.5, 40)); d.Delta != 0 {
		t.Fatalf("scaled up after one hot window: %+v", d)
	}
	// The second consecutive one triggers.
	if d := c.Decide(metricsAt(2, 0.5, 40)); d.Delta != 1 {
		t.Fatalf("no scale-up after two hot windows: %+v", d)
	}
	// Cooldown: the next two windows are ignored even though still hot.
	for i := 0; i < 2; i++ {
		if d := c.Decide(metricsAt(3+i, 0.5, 40)); d.Delta != 0 {
			t.Fatalf("acted during cooldown: %+v", d)
		}
	}
	// A healthy window between hot ones resets the streak.
	c = newReactive().(*reactive)
	c.Decide(metricsAt(1, 0.5, 40))
	c.Decide(metricsAt(2, 0.0, 30)) // not saturated, does not fit either
	if d := c.Decide(metricsAt(3, 0.5, 40)); d.Delta != 0 {
		t.Fatalf("hot streak survived a healthy window: %+v", d)
	}
	// Scale-down: demand fitting one node fewer for downAfter windows.
	c = newReactive().(*reactive)
	var d Decision
	for i := 0; i < 3; i++ {
		d = c.Decide(metricsAt(1+i, 0.0, 10))
	}
	if d.Delta != -1 {
		t.Fatalf("no scale-down after three oversized windows: %+v", d)
	}
}

func TestBacklogControllerTracksCeiling(t *testing.T) {
	c := newBacklog().(*backlogCtl)
	m := metricsAt(1, 0.3, 40)
	m.Backlog = 8192 // establishes the ceiling, first hot window
	if d := c.Decide(m); d.Delta != 0 {
		t.Fatalf("acted on the first window: %+v", d)
	}
	m.Tick = 2
	if d := c.Decide(m); d.Delta != 1 {
		t.Fatalf("no scale-up with backlog pinned at ceiling: %+v", d)
	}
	// Clear windows far below the ceiling eventually scale down.
	c = newBacklog().(*backlogCtl)
	hot := metricsAt(1, 0.3, 40)
	hot.Backlog = 8192
	c.Decide(hot)
	var d Decision
	for i := 0; i < 4; i++ {
		cool := metricsAt(2+i, 0.0, 10)
		cool.Backlog = 3000
		d = c.Decide(cool)
	}
	if d.Delta != -1 {
		t.Fatalf("no scale-down after four clear windows: %+v", d)
	}
}

func TestPredictivePreScalesOnTrend(t *testing.T) {
	c := newPredictive().(*predictive)
	// Rising demand, nothing refused yet: 20→26 demand-cores over four
	// windows on a 28-core elastic capacity projects past it.
	var d Decision
	for i := 0; i < 4; i++ {
		d = c.Decide(metricsAt(1+i, 0.0, 20+2*float64(i)))
	}
	if d.Delta != 1 {
		t.Fatalf("no pre-scale on a rising trend: %+v", d)
	}
	// Flat comfortable demand: scale down once the projection fits a
	// smaller cluster.
	c = newPredictive().(*predictive)
	for i := 0; i < 4; i++ {
		d = c.Decide(metricsAt(1+i, 0.0, 12))
	}
	if d.Delta != -1 {
		t.Fatalf("no scale-down on a flat comfortable trend: %+v", d)
	}
}

// latMetricsAt decorates metricsAt with an anatomy window for latency tests.
func latMetricsAt(tick int, p99 simtime.Duration, stage metrics.Stage, demandCores float64) Metrics {
	m := metricsAt(tick, 0.0, demandCores)
	m.LatencyP99 = p99
	m.LatencyWeight = 100
	m.DominantStage = stage
	m.DominantShare = 0.6
	m.LatencySLO = 200 * simtime.Millisecond
	return m
}

func TestLatencyControllerSLOAndPauseGuard(t *testing.T) {
	over := 300 * simtime.Millisecond // breaches the 200ms SLO
	under := 50 * simtime.Millisecond // within downFrac of it

	// Two consecutive breaches (service-bound) scale up; one does not.
	c := newLatency().(*latencyCtl)
	if d := c.Decide(latMetricsAt(1, over, metrics.StageService, 40)); d.Delta != 0 {
		t.Fatalf("scaled up after one breached window: %+v", d)
	}
	if d := c.Decide(latMetricsAt(2, over, metrics.StageService, 40)); d.Delta != 1 {
		t.Fatalf("no scale-up after two breached windows: %+v", d)
	}

	// Repartition-dominated breaches never scale: a §3.3 pause is transient
	// and node adds cannot shorten it.
	c = newLatency().(*latencyCtl)
	for i := 0; i < 6; i++ {
		if d := c.Decide(latMetricsAt(1+i, over, metrics.StageRepartition, 40)); d.Delta != 0 {
			t.Fatalf("scaled on a repartition-bound breach: %+v", d)
		}
	}

	// Empty windows are skipped, not treated as healthy: they must not feed
	// the scale-down streak.
	c = newLatency().(*latencyCtl)
	for i := 0; i < 8; i++ {
		m := latMetricsAt(1+i, 0, metrics.StageQueue, 10)
		m.LatencyWeight = 0
		if d := c.Decide(m); d.Delta != 0 {
			t.Fatalf("acted on an empty anatomy window: %+v", d)
		}
	}

	// A comfortable tail plus fitting demand scales down after downAfter.
	c = newLatency().(*latencyCtl)
	var d Decision
	for i := 0; i < 4; i++ {
		d = c.Decide(latMetricsAt(1+i, under, metrics.StageQueue, 10))
	}
	if d.Delta != -1 {
		t.Fatalf("no scale-down after four comfortable windows: %+v", d)
	}

	// With no session SLO the controller's default target applies.
	c = newLatency().(*latencyCtl)
	m := latMetricsAt(1, 600*simtime.Millisecond, metrics.StageService, 40)
	m.LatencySLO = 0 // default slo is 500ms; 600ms still breaches
	c.Decide(m)
	m.Tick = 2
	if d := c.Decide(m); d.Delta != 1 {
		t.Fatalf("default SLO not applied: %+v", d)
	}
}

func TestSlope(t *testing.T) {
	if s := slope([]float64{1, 2, 3, 4}); s != 1 {
		t.Fatalf("slope = %v, want 1", s)
	}
	if s := slope([]float64{5, 5, 5}); s != 0 {
		t.Fatalf("slope = %v, want 0", s)
	}
	if s := slope([]float64{7}); s != 0 {
		t.Fatalf("slope of one sample = %v, want 0", s)
	}
}

// startScenario builds a built-in scenario with an attached controller on
// the simulator and returns the completed report.
func runScenario(t *testing.T, name, ctl string, cfg Config, durationSec float64) *engine.Report {
	t.Helper()
	sp, err := scenario.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if durationSec > 0 {
		sp.DurationSec = durationSec
	}
	inst, err := sp.Build("elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ByName(ctl)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Warmup = sp.Warmup()
	Attach(inst.Handle, a, cfg)
	inst.Handle.Start(context.Background())
	r, err := inst.Handle.Wait()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSessionAccountingBaseline pins the cost integral on the do-nothing
// controller: a fixed 4-node cluster over 16 s costs exactly 64 node-seconds
// regardless of tick alignment, and the report carries the Autoscale section.
func TestSessionAccountingBaseline(t *testing.T) {
	r := runScenario(t, "flashcrowd", "none", Config{MaxNodes: 6}, 0)
	st := r.Autoscale
	if st == nil {
		t.Fatal("report has no Autoscale section")
	}
	if st.Controller != "none" {
		t.Fatalf("controller = %q", st.Controller)
	}
	if st.NodeSeconds != 64 {
		t.Fatalf("node-seconds = %v, want 64", st.NodeSeconds)
	}
	if st.Ticks != 32 {
		t.Fatalf("ticks = %d, want 32", st.Ticks)
	}
	if st.ScaleUps != 0 || st.ScaleDowns != 0 || len(st.Actions) != 0 {
		t.Fatalf("baseline acted: %+v", st)
	}
	// The 3x burst must register as SLO violation even for the baseline.
	if st.SLOViolation < 3*simtime.Second {
		t.Fatalf("SLO violation %v implausibly low for a 3x burst", st.SLOViolation)
	}
}

// TestAutoscaleDeterministic pins the closed loop to the simulator's
// determinism contract: the same (scenario, policy, controller, seed) twice
// produces identical reports, decisions included.
func TestAutoscaleDeterministic(t *testing.T) {
	a := runScenario(t, "flashcrowd", "reactive", Config{MaxNodes: 6}, 0)
	b := runScenario(t, "flashcrowd", "reactive", Config{MaxNodes: 6}, 0)
	fa := scenario.Fingerprint("flashcrowd", a)
	fb := scenario.Fingerprint("flashcrowd", b)
	if fa != fb {
		t.Fatalf("autoscaled run fingerprints diverged:\n%s\n%s", fa, fb)
	}
	if !reflect.DeepEqual(a.Autoscale.Actions, b.Autoscale.Actions) {
		t.Fatalf("decision sequences diverged:\n%v\n%v", a.Autoscale.Actions, b.Autoscale.Actions)
	}
	if !reflect.DeepEqual(a.Autoscale, b.Autoscale) {
		t.Fatalf("autoscale stats diverged:\n%+v\n%+v", a.Autoscale, b.Autoscale)
	}
	if a.Autoscale.ScaleUps == 0 {
		t.Fatal("reactive never scaled up under a 3x flash crowd")
	}
}

// TestReactiveFlashcrowdScalesUpThenDown pins the headline closed-loop
// behavior on the simulator: under a flash crowd (horizon stretched so the
// aftermath fits), the reactive controller scales up during the burst and
// returns the cluster to its original size afterwards, with every
// autoscaler-initiated drain graceful (zero lost state).
func TestReactiveFlashcrowdScalesUpThenDown(t *testing.T) {
	r := runScenario(t, "flashcrowd", "reactive", Config{MaxNodes: 6}, 24)
	st := r.Autoscale
	if st == nil {
		t.Fatal("report has no Autoscale section")
	}
	if st.ScaleUps < 2 || st.ScaleDowns < 1 {
		t.Fatalf("want >= 2 ups and >= 1 down, got %d/%d (%v)", st.ScaleUps, st.ScaleDowns, st.Actions)
	}
	// Decision sequence: the first action is a scale-up inside the burst
	// window (7s..11s), the last is a scale-down after it.
	first, last := st.Actions[0], st.Actions[len(st.Actions)-1]
	if first.Kind != engine.CmdAddNode {
		t.Fatalf("first action %v is not a scale-up", first)
	}
	if sec := first.At.Seconds(); sec < 7 || sec > 11 {
		t.Fatalf("first scale-up at %v, want inside the burst", first.At)
	}
	if last.Kind != engine.CmdDrainNode {
		t.Fatalf("last action %v is not a scale-down", last)
	}
	if last.At.Seconds() <= 11 {
		t.Fatalf("last scale-down at %v, want after the burst", last.At)
	}
	// The cluster returns to its original size: every join undone by a
	// drain, nothing refused, nothing lost.
	if r.NodeJoins != st.ScaleUps || r.NodeDrains != st.ScaleDowns {
		t.Fatalf("churn counters %d/%d disagree with actions %d/%d",
			r.NodeJoins, r.NodeDrains, st.ScaleUps, st.ScaleDowns)
	}
	if r.NodeJoins != r.NodeDrains {
		t.Fatalf("cluster did not return to size: %d joins, %d drains", r.NodeJoins, r.NodeDrains)
	}
	if len(r.ChurnErrors) != 0 {
		t.Fatalf("autoscaler commands were refused: %v", r.ChurnErrors)
	}
	if r.LostStateBytes != 0 {
		t.Fatalf("graceful drains lost %d bytes of state", r.LostStateBytes)
	}
	if st.PeakNodes != 6 {
		t.Fatalf("peak nodes = %d, want the 6-node cap", st.PeakNodes)
	}
}

// TestReactiveBeatsPeakProvisioning is the cost/SLO headline: on the flash
// crowd, the reactive autoscaler consumes fewer node-seconds than a
// statically peak-provisioned cluster (the MaxNodes-sized fixed cluster
// serving the same absolute load) at equal or lower SLO-violation time.
func TestReactiveBeatsPeakProvisioning(t *testing.T) {
	reactive := runScenario(t, "flashcrowd", "reactive", Config{MaxNodes: 6}, 0)

	sp, err := scenario.ByName("flashcrowd")
	if err != nil {
		t.Fatal(err)
	}
	peakSpec := sp.PeakClone(6) // same absolute demand, 6-node capacity
	inst, err := peakSpec.Build("elasticutor", 42)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := ByName("none")
	Attach(inst.Handle, a, Config{Warmup: peakSpec.Warmup(), MaxNodes: 6})
	inst.Handle.Start(context.Background())
	peak, err := inst.Handle.Wait()
	if err != nil {
		t.Fatal(err)
	}

	rs, ps := reactive.Autoscale, peak.Autoscale
	if rs.NodeSeconds >= ps.NodeSeconds {
		t.Fatalf("reactive node-seconds %.1f not below peak provisioning's %.1f",
			rs.NodeSeconds, ps.NodeSeconds)
	}
	if rs.SLOViolation > ps.SLOViolation {
		t.Fatalf("reactive SLO violation %v exceeds peak provisioning's %v",
			rs.SLOViolation, ps.SLOViolation)
	}
}

// TestAttachAfterStartPanics pins the wiring contract.
func TestAttachAfterStartPanics(t *testing.T) {
	sp, err := scenario.ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sp.Build("elasticutor", 1)
	if err != nil {
		t.Fatal(err)
	}
	inst.Handle.Start(context.Background())
	defer func() {
		if recover() == nil {
			t.Fatal("Attach after Start did not panic")
		}
		inst.Handle.Wait()
	}()
	a, _ := ByName("none")
	Attach(inst.Handle, a, Config{})
}
