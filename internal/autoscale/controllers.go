package autoscale

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// The built-in controllers. Each encodes one classic autoscaling idiom over
// the same Metrics view; DESIGN.md "Autoscaling layer" documents the contract
// and the cost/SLO definitions they are judged by.
//
// Shared signal conventions, from the probe profile of the quick-scale
// scenarios:
//
//   - BlockedFrac — the share of demand refused by source backpressure — is
//     the saturation signal. Backlog cannot be: the credit window caps it, so
//     a drowning cluster and a merely busy one show similar queue depths.
//     A loaded-but-healthy run still refuses a few percent in bursts, so
//     thresholds sit at ~5%, not zero.
//   - The elastic policies never *release* allocated cores while capacity is
//     fixed, so Utilization ratchets high and cannot drive scale-down.
//     Right-sizing instead compares DemandCores (demand over the estimated
//     per-core rate) against the elastic capacity the cluster would retain
//     after a drain.
//   - Core-static policies (static, rc) cannot use joined nodes at all; a
//     controller driving one sees its scale-ups buy nothing — an honest
//     finding of the study, not a bug.
//   - Reasons must derive from Metrics only, so simulator runs stay
//     deterministic.

// none is the do-nothing baseline: the fixed-capacity cluster the paper
// evaluates on.
type none struct{}

func newNone() Autoscaler { return none{} }

func (none) Name() string            { return "none" }
func (none) Decide(Metrics) Decision { return Decision{} }

// elasticAfterDrain is the executor-usable core count once one node leaves
// (sources keep their reservations on the survivors).
func elasticAfterDrain(m Metrics) float64 {
	return float64(m.TotalCores - m.CoresPerNode - m.SourceCores)
}

// reactive is the classic threshold controller with hysteresis and cooldown:
// scale up after upAfter consecutive saturated windows (refused demand above
// upFrac), scale down after downAfter consecutive windows in which the
// demand would still fit on one node fewer, and wait out a cooldown after
// every action so the cluster settles before the next decision.
type reactive struct {
	upFrac             float64 // refused-demand fraction that means saturated
	upAfter, downAfter int
	cooldown           int

	hot, cold, wait int
}

func newReactive() Autoscaler {
	return &reactive{upFrac: 0.05, upAfter: 2, downAfter: 3, cooldown: 2}
}

func (c *reactive) Name() string { return "reactive" }

func (c *reactive) Decide(m Metrics) Decision {
	if c.wait > 0 {
		c.wait--
		return Decision{}
	}
	saturated := m.BlockedFrac >= c.upFrac
	fits := m.CoreRate > 0 && m.DemandCores <= elasticAfterDrain(m)
	switch {
	case saturated:
		c.cold = 0
		c.hot++
		if c.hot >= c.upAfter {
			c.hot = 0
			c.wait = c.cooldown
			return Decision{Delta: 1,
				Reason: fmt.Sprintf("saturated: %.0f%% of demand refused", 100*m.BlockedFrac)}
		}
	case fits:
		c.hot = 0
		c.cold++
		if c.cold >= c.downAfter {
			c.cold = 0
			c.wait = c.cooldown
			return Decision{Delta: -1,
				Reason: fmt.Sprintf("oversized: demand %.1f cores fits %.0f", m.DemandCores, elasticAfterDrain(m))}
		}
	default:
		c.hot, c.cold = 0, 0
	}
	return Decision{}
}

// backlogCtl scales on queue depth relative to the deepest backlog it has
// seen (the credit window, once the run has saturated at least briefly): a
// queue pinned near the ceiling with demand being refused means the cluster
// is behind, a queue well below it that is draining means headroom. The
// drain-time target makes "behind" precise: scale up when the backlog could
// not be cleared within drainTarget at the current processing rate while
// demand is still being refused.
type backlogCtl struct {
	hiFrac, loFrac     float64 // fractions of the deepest backlog seen
	refusedEps         float64 // refusal fraction confirming genuine pressure
	upAfter, downAfter int
	cooldown           int

	maxSeen         int
	hot, cold, wait int
}

func newBacklog() Autoscaler {
	return &backlogCtl{hiFrac: 0.95, loFrac: 0.55, refusedEps: 0.01, upAfter: 2, downAfter: 4, cooldown: 2}
}

func (c *backlogCtl) Name() string { return "backlog" }

func (c *backlogCtl) Decide(m Metrics) Decision {
	if m.Backlog > c.maxSeen {
		c.maxSeen = m.Backlog
	}
	if c.wait > 0 {
		c.wait--
		return Decision{}
	}
	if c.maxSeen == 0 {
		return Decision{}
	}
	frac := float64(m.Backlog) / float64(c.maxSeen)
	behind := frac >= c.hiFrac && m.BlockedFrac > c.refusedEps
	clear := frac <= c.loFrac && m.BlockedFrac <= c.refusedEps
	switch {
	case behind:
		c.cold = 0
		c.hot++
		if c.hot >= c.upAfter {
			c.hot = 0
			c.wait = c.cooldown
			return Decision{Delta: 1,
				Reason: fmt.Sprintf("backlog %d at %.0f%% of ceiling, %.0f%% refused",
					m.Backlog, 100*frac, 100*m.BlockedFrac)}
		}
	case clear:
		c.hot = 0
		c.cold++
		if c.cold >= c.downAfter {
			c.cold = 0
			c.wait = c.cooldown
			return Decision{Delta: -1,
				Reason: fmt.Sprintf("backlog %d at %.0f%% of ceiling", m.Backlog, 100*frac)}
		}
	default:
		c.hot, c.cold = 0, 0
	}
	return Decision{}
}

// predictive extrapolates the demand trend and pre-scales ahead of it: a
// least-squares slope over the recent demand windows is projected lookahead
// windows forward and compared against the cluster's estimated capacity, so
// a ramp or diurnal upswing triggers the node add *before* backpressure
// does. Falling projections release nodes by the same right-sizing test the
// reactive controller uses.
type predictive struct {
	window    int     // demand history length, in control windows
	lookahead float64 // projection horizon, in control windows
	upFrac    float64 // scale up when projected demand exceeds this capacity fraction
	cooldown  int

	history []float64
	wait    int
}

func newPredictive() Autoscaler {
	return &predictive{window: 4, lookahead: 3, upFrac: 0.95, cooldown: 2}
}

func (c *predictive) Name() string { return "predictive" }

func (c *predictive) Decide(m Metrics) Decision {
	c.history = append(c.history, m.DemandRate)
	if len(c.history) > c.window {
		c.history = c.history[len(c.history)-c.window:]
	}
	if c.wait > 0 {
		c.wait--
		return Decision{}
	}
	if len(c.history) < c.window || m.CoreRate <= 0 {
		return Decision{}
	}
	projected := m.DemandRate + slope(c.history)*c.lookahead
	capacity := m.CoreRate * float64(m.TotalCores-m.SourceCores)
	projCores := projected / m.CoreRate
	switch {
	case m.BlockedFrac >= 0.05 || projected > c.upFrac*capacity:
		c.wait = c.cooldown
		return Decision{Delta: 1,
			Reason: fmt.Sprintf("projected %.0f/s vs capacity %.0f/s", projected, capacity)}
	case projCores <= elasticAfterDrain(m) && m.DemandCores <= elasticAfterDrain(m) && m.BlockedFrac < 0.05:
		c.wait = c.cooldown
		return Decision{Delta: -1,
			Reason: fmt.Sprintf("projected %.1f cores fits %.0f", projCores, elasticAfterDrain(m))}
	}
	return Decision{}
}

// latencyCtl closes the loop on the end-to-end tail instead of refused
// demand: scale up after upAfter consecutive windows whose folded p99 exceeds
// the target, scale down when the tail sits comfortably under it and the
// demand would still fit after a drain. Two latency-specific guards:
//
//   - Windows with no latency samples (LatencyWeight == 0) are skipped, not
//     treated as healthy — an empty window says nothing about the tail.
//   - A breach whose dominant stage is repartition is ignored: that tail is
//     a §3.3 control-plane pause, transient by construction, and adding
//     nodes cannot shorten it (it would only trigger more repartitions).
//
// The target is the session's Config.LatencySLO when set, else the
// controller's own default, so `-autoscaler latency` works out of the box.
type latencyCtl struct {
	slo                simtime.Duration // fallback target when the session sets none
	downFrac           float64          // scale down when p99 below this fraction of target
	upAfter, downAfter int
	cooldown           int

	hot, cold, wait int
}

func newLatency() Autoscaler {
	return &latencyCtl{slo: 500 * simtime.Millisecond, downFrac: 0.5,
		upAfter: 2, downAfter: 4, cooldown: 2}
}

func (c *latencyCtl) Name() string { return "latency" }

func (c *latencyCtl) Decide(m Metrics) Decision {
	if c.wait > 0 {
		c.wait--
		return Decision{}
	}
	target := m.LatencySLO
	if target <= 0 {
		target = c.slo
	}
	if m.LatencyWeight == 0 {
		// No samples landed this window; neither breach nor headroom.
		return Decision{}
	}
	breach := m.LatencyP99 > target
	pauseBound := breach && m.DominantStage == metrics.StageRepartition
	fits := m.CoreRate > 0 && m.DemandCores <= elasticAfterDrain(m)
	switch {
	case breach && !pauseBound:
		c.cold = 0
		c.hot++
		if c.hot >= c.upAfter {
			c.hot = 0
			c.wait = c.cooldown
			return Decision{Delta: 1,
				Reason: fmt.Sprintf("p99 %v over SLO %v (dominant %s)", m.LatencyP99, target, m.DominantStage)}
		}
	case !breach && m.LatencyP99.Seconds() <= c.downFrac*target.Seconds() && fits && m.BlockedFrac < 0.05:
		c.hot = 0
		c.cold++
		if c.cold >= c.downAfter {
			c.cold = 0
			c.wait = c.cooldown
			return Decision{Delta: -1,
				Reason: fmt.Sprintf("p99 %v under %.0f%% of SLO %v, demand %.1f cores fits %.0f",
					m.LatencyP99, 100*c.downFrac, target, m.DemandCores, elasticAfterDrain(m))}
		}
	default:
		c.hot, c.cold = 0, 0
		if pauseBound {
			// Repartition-bound breaches reset the streak but never scale.
			c.hot = 0
		}
	}
	return Decision{}
}

// slope is the least-squares slope of evenly spaced samples (per window).
func slope(ys []float64) float64 {
	n := float64(len(ys))
	if n < 2 {
		return 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i, y := range ys {
		x := float64(i)
		sumX += x
		sumY += y
		sumXY += x * y
		sumXX += x * x
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return 0
	}
	return (n*sumXY - sumX*sumY) / den
}
