// Package autoscale is the cluster-resizing control layer of the Elasticutor
// reproduction. The paper's elasticity policies rebalance a *fixed* core set;
// an Autoscaler closes the remaining loop by resizing the cluster itself:
// it periodically observes a live run through the Run handle's Snapshot and
// answers with node additions and graceful drains, which the handle injects
// as ordinary AddNode/DrainNode commands at safe points.
//
// The layer is a pure client of the run-handle API — it holds no engine
// hooks. On the simulator the control ticks are clock events at exact
// multiples of the interval and every decision input is derived from
// cumulative counters, so autoscaled runs are deterministic and
// golden-pinnable (and unperturbed by -live observation). On the real-time
// backend the same loop runs on the scaled wall clock under the race
// detector.
//
// Controllers are registered by name exactly like elasticity policies
// (ByName/Register); the built-ins are "none", "reactive", "backlog",
// "predictive", and "latency" (see controllers.go).
package autoscale

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/run"
	"repro/internal/simtime"
)

// Metrics is the windowed view of the cluster a controller decides on. All
// rates are measured over the control window just ended, derived from the
// run snapshot's cumulative counters (deterministic on the simulator).
type Metrics struct {
	Now    simtime.Time     // virtual time of this control tick
	Window simtime.Duration // span since the previous tick
	Tick   int              // 1-based control tick counter
	Warm   bool             // past the configured warm-up (decisions allowed)

	LiveNodes   int
	TotalCores  int
	UsedCores   int     // allocated cores: source reservations + executor grants
	OpCores     int     // the executor-grant share of UsedCores
	SourceCores int     // the source-reservation share (UsedCores - OpCores)
	Utilization float64 // UsedCores / TotalCores

	// OfferedRate is tuple weight/s admitted into the dataflow at the first
	// hop (source-level, so multi-operator chains don't re-count each hop);
	// ProcessedRate is the weight/s completed across all operators;
	// BlockedRate the weight/s source backpressure refused. DemandRate =
	// OfferedRate + BlockedRate is what the sources tried to emit, and
	// BlockedFrac the share of it that was refused — the saturation signal.
	OfferedRate   float64
	ProcessedRate float64
	BlockedRate   float64
	DemandRate    float64
	BlockedFrac   float64

	// CoreRate estimates one allocated core's processing rate: the running
	// maximum of windowed ProcessedRate/OpCores (the maximum, because an
	// under-loaded window shows idle allocated cores, not slow ones).
	// DemandCores is the core count the current total work demand occupies
	// (refused source tuples scaled by the observed downstream
	// amplification) — the right-sizing currency the scale-down rules use.
	CoreRate    float64
	DemandCores float64

	// Backlog is the tuple weight admitted but not yet processed at tick
	// time (network transit plus executor queues), summed over operators.
	// It is capped by the backpressure credit limit, so sustained overload
	// shows up in BlockedFrac, not here.
	Backlog int

	// LatencyP99 is the end-to-end p99 of the last folded anatomy window
	// (zero while LatencyWeight is zero — no samples landed yet), and
	// DominantStage/DominantShare name where that window's latency was
	// spent. A latency controller should read the stage before acting: a
	// p99 spike whose dominant stage is repartition is a transient
	// control-plane stall that extra nodes cannot shorten.
	LatencyP99    simtime.Duration
	LatencyWeight uint64
	DominantStage metrics.Stage
	DominantShare float64

	// LatencySLO echoes the session's configured latency objective (zero
	// when none), so a controller can target the same bound the SLO
	// accounting judges it by.
	LatencySLO simtime.Duration

	// The session's configured bounds, so controllers can reason about
	// remaining headroom. CoresPerNode is the marginal node size a scale
	// decision trades in (the configured add size, else the cluster mean).
	MinNodes     int
	MaxNodes     int
	CoresPerNode int
}

// Decision is a controller's answer for one control window.
type Decision struct {
	// Delta is the requested node-count change: positive adds that many
	// nodes, negative drains that many, zero holds. The session clamps it to
	// the configured [MinNodes, MaxNodes] range.
	Delta int
	// Reason is the stated trigger, recorded on every applied action. It
	// must be deterministic on the simulator (derive it from Metrics only).
	Reason string
}

// Autoscaler is one closed-loop cluster controller. Implementations carry
// per-run state (hysteresis counters, trend windows) and must not be shared
// between runs — the registry builds a fresh instance per ByName call.
type Autoscaler interface {
	// Name returns the controller's registry name.
	Name() string
	// Decide inspects one control window and requests a node-count change.
	Decide(m Metrics) Decision
}

// Config tunes an autoscaling session. Zero values take defaults.
type Config struct {
	// Interval is the control-loop period in virtual time (default 500 ms).
	Interval simtime.Duration
	// MinNodes and MaxNodes bound the controller's authority (defaults: the
	// cluster size at attach time, and that plus 4). Scenario churn may
	// still move the cluster outside the range; the bounds only clamp the
	// controller's own actions.
	MinNodes int
	MaxNodes int
	// NodeCores sizes added nodes (0 = the cluster's configured default).
	NodeCores int
	// Warmup defers decisions and SLO accounting to ticks at or after this
	// virtual offset: the simulator's cold start (empty routing tables, no
	// allocation history) is a startup artifact, not a scaling signal —
	// the same span the report's metrics exclude. Node-seconds are still
	// billed from time zero. Default 0 (no warm-up).
	Warmup simtime.Duration
	// RefusedSLO is the service objective on refused demand: a (post
	// warm-up) control window is an SLO violation when more than this
	// fraction of the offered demand was turned away by source backpressure
	// (default 0.05). Sustained overload always lands here, because the
	// credit-based backpressure caps how far Backlog can grow.
	RefusedSLO float64
	// BacklogSLO optionally adds a queued-weight ceiling to the objective:
	// when > 0, a window whose ending backlog exceeds it is a violation
	// too. Default 0 (disabled): the credit limit, not the SLO, is what
	// usually bounds the backlog — set this when the credit window is
	// larger than the latency budget.
	BacklogSLO int
	// LatencySLO optionally adds an end-to-end tail-latency objective: when
	// > 0, a post-warm-up window whose folded p99 exceeds it is a violation
	// (windows with no latency samples are not judged). Default 0
	// (disabled). This is the objective the "latency" controller closes the
	// loop on.
	LatencySLO simtime.Duration
}

func (c Config) withDefaults(liveNodes int) Config {
	if c.Interval <= 0 {
		c.Interval = 500 * simtime.Millisecond
	}
	if c.MinNodes <= 0 {
		c.MinNodes = liveNodes
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = c.MinNodes + 4
	}
	if c.MaxNodes < c.MinNodes {
		c.MaxNodes = c.MinNodes
	}
	if c.RefusedSLO <= 0 {
		c.RefusedSLO = 0.05
	}
	return c
}

// Session is one autoscaler bound to one live run: it aggregates control
// windows, applies the controller's decisions, and accounts cost and SLO
// compliance. Read Stats after the run completes; the session also stamps
// Report.Autoscale via the handle's finish hook.
type Session struct {
	a   Autoscaler
	cfg Config

	mu    sync.Mutex // runtime-backend ticks come from timer goroutines
	stats engine.AutoscaleStats

	lastAt         simtime.Time
	lastNodes      int
	lastOffered    int64
	lastSrcOffered int64
	lastProcessed  int64
	lastBlocked    int64
	maxCoreRate    float64
}

// Attach binds a controller to a wired, unstarted run handle: the control
// loop samples every cfg.Interval of virtual time, decisions become
// AddNode/DrainNode commands at the same safe point, and the completed
// report gains its Autoscale section. Call before h.Start.
func Attach(h *run.Run, a Autoscaler, cfg Config) *Session {
	snap := h.Snapshot()
	cfg = cfg.withDefaults(snap.LiveNodes)
	s := &Session{
		a:         a,
		cfg:       cfg,
		lastNodes: snap.LiveNodes,
	}
	s.stats.Controller = a.Name()
	s.stats.PeakNodes = snap.LiveNodes
	s.stats.MinNodesSeen = snap.LiveNodes
	h.AttachController(cfg.Interval, s.tick)
	h.OnFinish(s.finish)
	return s
}

// tick runs one control window: account, measure, decide, act.
func (s *Session) tick(snap engine.Snapshot) []engine.Command {
	s.mu.Lock()
	defer s.mu.Unlock()

	window := snap.Now.Sub(s.lastAt)
	if window <= 0 {
		// A wall-clock backend under scheduler delay can deliver ticks out
		// of order; a non-advancing window has nothing to account or decide.
		return nil
	}
	var offered, processed, srcOffered int64
	backlog, opCores := 0, 0
	for _, o := range snap.Operators {
		offered += o.Offered
		processed += o.Processed
		backlog += o.Queued
		opCores += o.Cores
		if o.FirstHop {
			srcOffered += o.Offered
		}
	}
	if srcOffered == 0 {
		srcOffered = offered // defensive: every topology has a first hop
	}
	m := Metrics{
		Now:         snap.Now,
		Window:      window,
		Tick:        s.stats.Ticks + 1,
		Warm:        simtime.Duration(snap.Now) >= s.cfg.Warmup,
		LiveNodes:   snap.LiveNodes,
		TotalCores:  snap.TotalCores,
		UsedCores:   snap.UsedCores,
		OpCores:     opCores,
		SourceCores: snap.UsedCores - opCores,
		Utilization: snap.Utilization,
		Backlog:     backlog,
		MinNodes:    s.cfg.MinNodes,
		MaxNodes:    s.cfg.MaxNodes,

		LatencyP99:    snap.LatencyP99,
		LatencyWeight: snap.LatencyWeight,
		DominantStage: snap.DominantStage,
		DominantShare: snap.DominantShare,
		LatencySLO:    s.cfg.LatencySLO,
	}
	sec := window.Seconds()
	dAll := offered - s.lastOffered
	dSrc := srcOffered - s.lastSrcOffered
	dBlocked := snap.Blocked - s.lastBlocked
	// Offered/demand rates are *source-level* (first-hop admissions), so the
	// refusal fraction is not diluted on multi-operator topologies where
	// every hop re-counts the tuple.
	m.OfferedRate = float64(dSrc) / sec
	m.ProcessedRate = float64(processed-s.lastProcessed) / sec
	m.BlockedRate = float64(dBlocked) / sec
	m.DemandRate = m.OfferedRate + m.BlockedRate
	if m.DemandRate > 0 {
		m.BlockedFrac = m.BlockedRate / m.DemandRate
	}
	if opCores > 0 && m.ProcessedRate/float64(opCores) > s.maxCoreRate {
		s.maxCoreRate = m.ProcessedRate / float64(opCores)
	}
	m.CoreRate = s.maxCoreRate
	if m.CoreRate > 0 {
		// Demand-cores measures *total work*: one source tuple may spawn
		// work at several downstream operators, so refused source tuples are
		// scaled by the observed per-tuple amplification before dividing by
		// the per-core rate. On a single-operator topology this reduces to
		// DemandRate / CoreRate.
		ampl := 1.0
		if dSrc > 0 && dAll > dSrc {
			ampl = float64(dAll) / float64(dSrc)
		}
		m.DemandCores = (float64(dAll) + float64(dBlocked)*ampl) / sec / m.CoreRate
	}
	m.CoresPerNode = s.cfg.NodeCores
	if m.CoresPerNode <= 0 && snap.LiveNodes > 0 {
		m.CoresPerNode = snap.TotalCores / snap.LiveNodes
	}

	// Cost and SLO accounting: the window just ended is billed at the node
	// count observed at its *start* (left endpoint — a node added mid-window
	// starts costing from the next tick), and a post-warm-up window is an
	// SLO violation when too much demand was refused (or the backlog ended
	// above the optional ceiling).
	s.stats.Ticks++
	s.stats.NodeSeconds += window.Seconds() * float64(s.lastNodes)
	if m.Warm && (m.BlockedFrac > s.cfg.RefusedSLO ||
		(s.cfg.BacklogSLO > 0 && backlog > s.cfg.BacklogSLO) ||
		(s.cfg.LatencySLO > 0 && m.LatencyWeight > 0 && m.LatencyP99 > s.cfg.LatencySLO)) {
		s.stats.SLOViolation += window
	}
	if snap.LiveNodes > s.stats.PeakNodes {
		s.stats.PeakNodes = snap.LiveNodes
	}
	if snap.LiveNodes < s.stats.MinNodesSeen {
		s.stats.MinNodesSeen = snap.LiveNodes
	}
	s.lastAt = snap.Now
	s.lastNodes = snap.LiveNodes
	s.lastOffered, s.lastSrcOffered = offered, srcOffered
	s.lastProcessed, s.lastBlocked = processed, snap.Blocked

	if !m.Warm {
		return nil
	}
	d := s.a.Decide(m)
	return s.actLocked(snap, m, d)
}

// actLocked clamps a decision to the session bounds and turns it into
// commands, recording every applied action.
func (s *Session) actLocked(snap engine.Snapshot, m Metrics, d Decision) []engine.Command {
	var cmds []engine.Command
	at := simtime.Duration(snap.Now)
	switch {
	case d.Delta > 0:
		n := d.Delta
		if room := s.cfg.MaxNodes - snap.LiveNodes; n > room {
			n = room
		}
		for i := 0; i < n; i++ {
			cmd := engine.AddNodeCmd(s.cfg.NodeCores)
			cmd.Label = fmt.Sprintf("autoscale %s tick %d", s.a.Name(), m.Tick)
			cmds = append(cmds, cmd)
			s.stats.ScaleUps++
			s.stats.Actions = append(s.stats.Actions, engine.ScaleAction{
				At: at, Kind: engine.CmdAddNode, Node: -1, Reason: d.Reason})
		}
	case d.Delta < 0:
		n := -d.Delta
		if room := snap.LiveNodes - s.cfg.MinNodes; n > room {
			n = room
		}
		// Drain newest-first: the highest live IDs are the nodes the
		// controller (or the scenario) added most recently, so scale-down
		// unwinds scale-up. The engine may still refuse an infeasible drain;
		// the refusal lands in Report.ChurnErrors and the cluster keeps the
		// node (the accounting integral reflects whatever actually holds).
		ids := append([]int(nil), snap.Nodes...)
		sort.Sort(sort.Reverse(sort.IntSlice(ids)))
		for i := 0; i < n && i < len(ids); i++ {
			cmd := engine.DrainNodeCmd(ids[i])
			cmd.Label = fmt.Sprintf("autoscale %s tick %d", s.a.Name(), m.Tick)
			cmds = append(cmds, cmd)
			s.stats.ScaleDowns++
			s.stats.Actions = append(s.stats.Actions, engine.ScaleAction{
				At: at, Kind: engine.CmdDrainNode, Node: ids[i], Reason: d.Reason})
		}
	}
	return cmds
}

// finish closes the node-seconds integral at the report's horizon and stamps
// the Autoscale section.
func (s *Session) finish(rep *engine.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tail := rep.Duration - simtime.Duration(s.lastAt); tail > 0 {
		s.stats.NodeSeconds += tail.Seconds() * float64(s.lastNodes)
	}
	st := s.stats
	st.Actions = append([]engine.ScaleAction(nil), s.stats.Actions...)
	rep.Autoscale = &st
}

// Stats returns a copy of the session's account so far (complete once the
// run has finished).
func (s *Session) Stats() engine.AutoscaleStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Actions = append([]engine.ScaleAction(nil), s.stats.Actions...)
	return st
}
