// Package qmodel implements the performance model of paper §4.1: the
// topology is treated as a Jackson network in which each elastic executor j
// with k_j allocated cores is an M/M/k_j queue. The model predicts average
// processing latency E[T](k) and drives a greedy core-allocation that finds
// the minimal total allocation meeting a user latency target Tmax (shown
// optimal in the DRS work the paper cites, [15]).
package qmodel

import (
	"math"

	"repro/internal/simtime"
)

// ErlangC returns the probability that an arriving job must queue in an
// M/M/k system with offered load a = λ/μ (in Erlangs). Requires a < k for a
// stable system; returns 1 for saturated or invalid inputs (every job waits).
func ErlangC(k int, a float64) float64 {
	if k <= 0 || a < 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	if a >= float64(k) {
		return 1
	}
	// Compute iteratively in log-free form: term_i = a^i/i! normalized on the
	// fly to avoid overflow for large k.
	sum := 1.0  // i = 0 term, scaled
	term := 1.0 // a^i / i!
	for i := 1; i < k; i++ {
		term *= a / float64(i)
		sum += term
	}
	top := term * a / float64(k) // a^k / k!
	top *= float64(k) / (float64(k) - a)
	return top / (sum + top)
}

// MMkSojourn returns the expected sojourn time (queue wait + service) of an
// M/M/k queue with arrival rate lambda (1/s), per-core service rate mu (1/s),
// and k cores. An unstable system returns +Inf.
func MMkSojourn(lambda, mu float64, k int) float64 {
	if mu <= 0 || k <= 0 {
		return math.Inf(1)
	}
	if lambda <= 0 {
		return 1 / mu
	}
	a := lambda / mu
	if a >= float64(k) {
		return math.Inf(1)
	}
	wait := ErlangC(k, a) / (float64(k)*mu - lambda)
	return wait + 1/mu
}

// ExecutorLoad is the measured per-executor input to the model.
type ExecutorLoad struct {
	Lambda float64 // tuple arrival rate, tuples/s
	Mu     float64 // per-core service rate, tuples/s (1 / mean processing time)
}

// MinCores returns ⌊λ/μ⌋+1, the minimal stable allocation (§4.1).
func (e ExecutorLoad) MinCores() int {
	if e.Mu <= 0 {
		return 1
	}
	k := int(math.Floor(e.Lambda/e.Mu)) + 1
	if k < 1 {
		k = 1
	}
	return k
}

// NetworkLatency evaluates Equation (1): the arrival-rate-weighted mean of
// per-executor sojourn times, normalized by the input-stream rate lambda0.
func NetworkLatency(loads []ExecutorLoad, k []int, lambda0 float64) float64 {
	if lambda0 <= 0 {
		// Fall back to the total arrival rate so an idle system reports the
		// plain weighted mean instead of dividing by zero.
		for _, l := range loads {
			lambda0 += l.Lambda
		}
		if lambda0 <= 0 {
			return 0
		}
	}
	var sum float64
	for j, l := range loads {
		if l.Lambda <= 0 {
			continue
		}
		sum += l.Lambda * MMkSojourn(l.Lambda, l.Mu, k[j])
	}
	return sum / lambda0
}

// Allocation is the result of Allocate.
type Allocation struct {
	K        []int   // cores per executor
	Total    int     // ΣK
	Latency  float64 // predicted E[T] seconds
	Feasible bool    // E[T] <= Tmax within the core budget
}

// Allocate implements the greedy algorithm of §4.1: start each executor at
// its minimal stable allocation ⌊λ/μ⌋+1, then repeatedly grant one more core
// to the executor whose increment most decreases E[T], stopping when the
// predicted latency meets tmax or the budget of available cores is exhausted.
func Allocate(loads []ExecutorLoad, lambda0 float64, tmax simtime.Duration, available int) Allocation {
	m := len(loads)
	k := make([]int, m)
	total := 0
	for j, l := range loads {
		k[j] = l.MinCores()
		total += k[j]
	}
	// If even the stability minimum exceeds the budget, scale down greedily:
	// remove cores where removal hurts least while keeping k_j >= 1. The
	// result is infeasible but still the best-effort plan the engine applies.
	for total > available {
		best, bestCost := -1, math.Inf(1)
		for j := range k {
			if k[j] <= 1 {
				continue
			}
			// When every candidate removal saturates its queue (+Inf cost) we
			// still must shed cores to respect the budget; prefer the executor
			// with the lowest arrival rate in that case.
			cost := deltaRemoval(loads[j], k[j])
			if best < 0 || cost < bestCost ||
				(math.IsInf(cost, 1) && math.IsInf(bestCost, 1) && loads[j].Lambda < loads[best].Lambda) {
				best, bestCost = j, cost
			}
		}
		if best < 0 {
			break // every executor is already at one core
		}
		k[best]--
		total--
	}

	target := tmax.Seconds()
	lat := NetworkLatency(loads, k, lambda0)
	for total < available && lat > target {
		// Grant the core with the steepest latency decrease.
		best, bestLat := -1, lat
		for j := range k {
			k[j]++
			cand := NetworkLatency(loads, k, lambda0)
			k[j]--
			if cand < bestLat {
				best, bestLat = j, cand
			}
		}
		if best < 0 {
			break // no single grant helps (e.g. latency dominated by service time)
		}
		k[best]++
		total++
		lat = bestLat
	}
	return Allocation{K: k, Total: total, Latency: lat, Feasible: lat <= target && total <= available}
}

// deltaRemoval estimates the latency penalty of removing one core from an
// executor, used by the scale-down path. Saturating removals cost +Inf.
func deltaRemoval(l ExecutorLoad, k int) float64 {
	before := MMkSojourn(l.Lambda, l.Mu, k)
	after := MMkSojourn(l.Lambda, l.Mu, k-1)
	return after - before
}
