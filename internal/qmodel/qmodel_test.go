package qmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: C(1, ρ) = ρ.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		if got := ErlangC(1, rho); math.Abs(got-rho) > 1e-12 {
			t.Fatalf("C(1,%v) = %v, want %v", rho, got, rho)
		}
	}
	// Textbook value: C(2, 1) = 1/3.
	if got := ErlangC(2, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("C(2,1) = %v, want 1/3", got)
	}
}

func TestErlangCBounds(t *testing.T) {
	if ErlangC(4, 0) != 0 {
		t.Fatal("C(k,0) should be 0")
	}
	if ErlangC(4, 4) != 1 || ErlangC(4, 5) != 1 {
		t.Fatal("saturated C should be 1")
	}
	if ErlangC(0, 1) != 1 || ErlangC(2, -1) != 1 {
		t.Fatal("invalid inputs should be 1")
	}
	// Large k must not overflow.
	if c := ErlangC(500, 400); c <= 0 || c >= 1 || math.IsNaN(c) {
		t.Fatalf("C(500,400) = %v", c)
	}
}

func TestErlangCMonotoneInK(t *testing.T) {
	f := func(aRaw uint8) bool {
		a := 0.1 + float64(aRaw%40)/10 // a in [0.1, 4.0]
		prev := 1.0
		for k := int(math.Ceil(a)) + 1; k < 20; k++ {
			c := ErlangC(k, a)
			if c > prev+1e-12 {
				return false
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMMkSojournLimits(t *testing.T) {
	// No load: sojourn = service time.
	if got := MMkSojourn(0, 1000, 4); got != 1e-3 {
		t.Fatalf("idle sojourn = %v", got)
	}
	// Saturated: infinite.
	if !math.IsInf(MMkSojourn(5000, 1000, 4), 1) {
		t.Fatal("saturated sojourn should be +Inf")
	}
	// Many cores: sojourn approaches service time.
	got := MMkSojourn(1000, 1000, 64)
	if math.Abs(got-1e-3) > 1e-6 {
		t.Fatalf("over-provisioned sojourn = %v, want ~1ms", got)
	}
	// M/M/1 closed form: T = 1/(μ-λ).
	got = MMkSojourn(500, 1000, 1)
	if math.Abs(got-1.0/500) > 1e-12 {
		t.Fatalf("M/M/1 sojourn = %v, want 2ms", got)
	}
}

func TestMMkSojournDecreasesWithK(t *testing.T) {
	prev := math.Inf(1)
	for k := 2; k <= 32; k++ {
		s := MMkSojourn(1500, 1000, k)
		if s > prev+1e-15 {
			t.Fatalf("sojourn increased at k=%d", k)
		}
		prev = s
	}
}

func TestMinCores(t *testing.T) {
	if k := (ExecutorLoad{Lambda: 2500, Mu: 1000}).MinCores(); k != 3 {
		t.Fatalf("MinCores = %d, want 3", k)
	}
	if k := (ExecutorLoad{Lambda: 0, Mu: 1000}).MinCores(); k != 1 {
		t.Fatalf("idle MinCores = %d, want 1", k)
	}
	if k := (ExecutorLoad{Lambda: 100, Mu: 0}).MinCores(); k != 1 {
		t.Fatalf("unknown-mu MinCores = %d, want 1", k)
	}
}

func TestNetworkLatencyWeighting(t *testing.T) {
	loads := []ExecutorLoad{
		{Lambda: 900, Mu: 1000},
		{Lambda: 100, Mu: 1000},
	}
	k := []int{2, 2}
	// Executor 0 carries 90% of the traffic, so E[T] is dominated by it.
	lat := NetworkLatency(loads, k, 1000)
	t0 := MMkSojourn(900, 1000, 2)
	t1 := MMkSojourn(100, 1000, 2)
	want := (900*t0 + 100*t1) / 1000
	if math.Abs(lat-want) > 1e-12 {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestNetworkLatencyZeroLambda0(t *testing.T) {
	loads := []ExecutorLoad{{Lambda: 100, Mu: 1000}}
	if lat := NetworkLatency(loads, []int{1}, 0); math.IsNaN(lat) || lat <= 0 {
		t.Fatalf("fallback latency = %v", lat)
	}
	if lat := NetworkLatency(nil, nil, 0); lat != 0 {
		t.Fatalf("empty latency = %v", lat)
	}
}

func TestAllocateMeetsTarget(t *testing.T) {
	loads := []ExecutorLoad{
		{Lambda: 3000, Mu: 1000},
		{Lambda: 500, Mu: 1000},
	}
	a := Allocate(loads, 3500, 2*simtime.Millisecond, 64)
	if !a.Feasible {
		t.Fatalf("allocation infeasible: %+v", a)
	}
	if a.K[0] < 4 {
		t.Fatalf("hot executor got %d cores, needs >= 4 for stability", a.K[0])
	}
	if a.Latency > 2e-3 {
		t.Fatalf("predicted latency %v above target", a.Latency)
	}
	// Greedy should not waste the whole budget.
	if a.Total >= 64 {
		t.Fatalf("allocation used full budget: %d", a.Total)
	}
}

func TestAllocateStartsAtStabilityMinimum(t *testing.T) {
	loads := []ExecutorLoad{{Lambda: 2500, Mu: 1000}}
	a := Allocate(loads, 2500, simtime.Second, 64)
	// Target is loose (1 s), so the greedy loop should stop at ⌊λ/μ⌋+1 = 3.
	if a.K[0] != 3 {
		t.Fatalf("K = %v, want stability minimum 3", a.K)
	}
}

func TestAllocateBudgetExhaustion(t *testing.T) {
	loads := []ExecutorLoad{
		{Lambda: 5000, Mu: 1000},
		{Lambda: 5000, Mu: 1000},
	}
	// Needs 12 cores for stability but only 8 available.
	a := Allocate(loads, 10000, simtime.Millisecond, 8)
	if a.Feasible {
		t.Fatal("should be infeasible")
	}
	if a.Total > 8 {
		t.Fatalf("allocation exceeds budget: %d", a.Total)
	}
	for _, k := range a.K {
		if k < 1 {
			t.Fatalf("executor starved: %v", a.K)
		}
	}
}

func TestAllocateSkewedDemand(t *testing.T) {
	// Heavier executors must get more cores.
	loads := []ExecutorLoad{
		{Lambda: 100, Mu: 1000},
		{Lambda: 7900, Mu: 1000},
	}
	a := Allocate(loads, 8000, 5*simtime.Millisecond, 32)
	if a.K[1] <= a.K[0] {
		t.Fatalf("allocation ignores skew: %v", a.K)
	}
}

// Property: Allocate never exceeds the budget and keeps every executor >= 1.
func TestAllocatePropertyBudget(t *testing.T) {
	f := func(seed uint64, mRaw, availRaw uint8) bool {
		rng := simtime.NewRand(seed)
		m := 1 + int(mRaw%10)
		avail := m + int(availRaw%32)
		loads := make([]ExecutorLoad, m)
		var l0 float64
		for j := range loads {
			loads[j] = ExecutorLoad{Lambda: rng.Float64() * 5000, Mu: 500 + rng.Float64()*1500}
			l0 += loads[j].Lambda
		}
		a := Allocate(loads, l0, 10*simtime.Millisecond, avail)
		if a.Total > avail {
			return false
		}
		sum := 0
		for _, k := range a.K {
			if k < 1 {
				return false
			}
			sum += k
		}
		return sum == a.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
